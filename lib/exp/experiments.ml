let opts theta = { Squash.default_options with Squash.theta }

let with_all f = List.map (fun wl -> f (Exp_data.prepare wl)) Workloads.all

(* Machine-readable metrics: experiments push (key, value) pairs as they
   run; the bench driver drains them after each experiment into its
   [--json] report. *)
let metrics : (string * Report.Json.t) list ref = ref []
let record_metric key v = metrics := (key, v) :: !metrics

let drain_metrics () =
  let m = List.rev !metrics in
  metrics := [];
  m

(* Every driver submits its cell set to the engine up front: the grid is
   evaluated concurrently (and through the persistent cache) into the
   Exp_data memos, then the rendering below reads the warm memos.  Cells
   are listed workload-innermost so the first [jobs] dequeued cells touch
   distinct workloads and their prepare stages parallelise.  A failed cell
   is surfaced as a metric (and will re-raise during rendering if the
   renderer actually needs it). *)
let submit cells =
  let results, stats = Exp_grid.run ~jobs:(Exp_grid.jobs ()) cells in
  record_metric "engine" (Engine.stats_json stats);
  (match Exp_grid.failures results with
  | [] -> ()
  | fs ->
    record_metric "engine_failures"
      (Report.Json.List (List.map Engine.error_json fs)));
  results

let grid_cells ?(timing = false) option_list =
  List.concat_map
    (fun o -> List.map (fun wl -> Exp_grid.cell ~timing wl o) Workloads.all)
    option_list

(* ------------------------------------------------------------------ *)

let table1 () =
  ignore (submit (grid_cells [ opts 0.0 ]));
  let t =
    Report.Table.create ~title:"Table 1: code size data for the benchmarks (instructions)"
      [ ("Program", Report.Table.Left); ("Input", Report.Table.Right);
        ("Squeeze", Report.Table.Right); ("Reduction", Report.Table.Right) ]
  in
  let rows =
    with_all (fun p ->
        let input = Prog.instr_count p.Exp_data.input_prog in
        let squeezed = Prog.instr_count p.Exp_data.squeezed in
        Report.Table.add_row t
          [ p.Exp_data.wl.Workload.name; string_of_int input; string_of_int squeezed;
            Report.Table.cell_percent
              (float_of_int (input - squeezed) /. float_of_int input) ];
        float_of_int squeezed /. float_of_int input)
  in
  Report.Table.add_separator t;
  Report.Table.add_row t
    [ "geo. mean"; ""; "";
      Report.Table.cell_percent (1.0 -. Report.gmean rows) ];
  Report.Table.render t

(* ------------------------------------------------------------------ *)

let fig3_ks = [ 64; 128; 256; 512; 1024; 2048; 4096 ]
let fig3_thetas = [ 0.0; 1e-4; 1e-3 ]

let fig3 () =
  ignore
    (submit
       (grid_cells
          (List.concat_map
             (fun theta ->
               List.map (fun k -> { (opts theta) with Squash.k_bytes = k }) fig3_ks)
             fig3_thetas)));
  let size_ratio p theta k =
    let r =
      Exp_data.squash_result p { (opts theta) with Squash.k_bytes = k }
    in
    float_of_int r.Squash.squashed_words /. float_of_int r.Squash.original_words
  in
  let chart =
    Report.Chart.create
      ~title:
        "Figure 3: effect of the buffer size bound K on code size\n\
         (squashed size / squeezed size; geometric mean over all benchmarks)"
      ~x_labels:(List.map string_of_int fig3_ks) ~height:14 ()
  in
  let t =
    Report.Table.create ~title:"Figure 3 data (squashed/squeezed, geometric mean)"
      (("theta \\ K", Report.Table.Left)
      :: List.map (fun k -> (string_of_int k, Report.Table.Right)) fig3_ks)
  in
  List.iter
    (fun theta ->
      let means =
        List.map
          (fun k -> Report.gmean (with_all (fun p -> size_ratio p theta k)))
          fig3_ks
      in
      Report.Chart.add_series chart ~name:("theta=" ^ Exp_data.theta_label theta) means;
      Report.Table.add_row t
        (Exp_data.theta_label theta :: List.map (Report.Table.cell_float ~decimals:3) means))
    fig3_thetas;
  let overall =
    List.map
      (fun k ->
        Report.gmean
          (List.concat_map
             (fun theta -> with_all (fun p -> size_ratio p theta k))
             fig3_thetas))
      fig3_ks
  in
  Report.Chart.add_series chart ~name:"mean" overall;
  Report.Table.add_separator t;
  Report.Table.add_row t
    ("mean" :: List.map (Report.Table.cell_float ~decimals:3) overall);
  Report.Chart.render chart ^ "\n" ^ Report.Table.render t

(* ------------------------------------------------------------------ *)

let fig4 () =
  ignore (submit (grid_cells (List.map opts Exp_data.theta_grid)));
  let chart =
    Report.Chart.create
      ~title:
        "Figure 4: amount of cold and compressible code (fraction of all\n\
         instructions; geometric mean over all benchmarks)"
      ~x_labels:(List.map Exp_data.theta_label Exp_data.theta_grid) ~height:12 ()
  in
  let t =
    Report.Table.create ~title:"Figure 4 data"
      (("fraction \\ theta", Report.Table.Left)
      :: List.map
           (fun th -> (Exp_data.theta_label th, Report.Table.Right))
           Exp_data.theta_grid)
  in
  let cold_fracs =
    List.map
      (fun theta ->
        Report.gmean
          (with_all (fun p ->
               let r = Exp_data.squash_result p (opts theta) in
               Cold.cold_fraction r.Squash.cold)))
      Exp_data.theta_grid
  in
  let compressible_fracs =
    List.map
      (fun theta ->
        Report.gmean
          (with_all (fun p ->
               let r = Exp_data.squash_result p (opts theta) in
               float_of_int (Squash.compressed_instr_count r)
               /. float_of_int (Cold.total_instr_count r.Squash.cold))))
      Exp_data.theta_grid
  in
  Report.Chart.add_series chart ~name:"cold" cold_fracs;
  Report.Chart.add_series chart ~name:"compressible" compressible_fracs;
  Report.Table.add_row t
    ("cold" :: List.map (Report.Table.cell_float ~decimals:3) cold_fracs);
  Report.Table.add_row t
    ("compressible" :: List.map (Report.Table.cell_float ~decimals:3) compressible_fracs);
  Report.Chart.render chart ^ "\n" ^ Report.Table.render t

(* ------------------------------------------------------------------ *)

let fig5 () =
  let t =
    Report.Table.create ~title:"Figure 5: inputs used for profiling and timing runs"
      [ ("Program", Report.Table.Left); ("Profiling input (bytes)", Report.Table.Right);
        ("Timing input (bytes)", Report.Table.Right);
        ("Ratio", Report.Table.Right) ]
  in
  List.iter
    (fun (wl : Workload.t) ->
      let p = String.length (Workload.profiling_input wl) in
      let tm = String.length (Workload.timing_input wl) in
      Report.Table.add_row t
        [ wl.Workload.name; string_of_int p; string_of_int tm;
          Report.Table.cell_float ~decimals:1 (float_of_int tm /. float_of_int p) ])
    Workloads.all;
  Report.Table.render t

(* ------------------------------------------------------------------ *)

let fig6 () =
  ignore (submit (grid_cells (List.map opts Exp_data.theta_grid)));
  let t =
    Report.Table.create
      ~title:"Figure 6: code size reduction due to profile-guided compression (vs squeezed)"
      (("Program", Report.Table.Left)
      :: List.map
           (fun th -> ("θ=" ^ Exp_data.theta_label th, Report.Table.Right))
           Exp_data.theta_grid)
  in
  let per_theta = Hashtbl.create 16 in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let cells =
        List.map
          (fun theta ->
            let r = Exp_data.squash_result p (opts theta) in
            let red = Squash.size_reduction r in
            Hashtbl.replace per_theta theta
              (red :: Option.value ~default:[] (Hashtbl.find_opt per_theta theta));
            Report.Table.cell_percent red)
          Exp_data.theta_grid
      in
      Report.Table.add_row t (wl.Workload.name :: cells))
    Workloads.all;
  Report.Table.add_separator t;
  let means =
    List.map
      (fun theta ->
        let rs = Option.value ~default:[] (Hashtbl.find_opt per_theta theta) in
        let ratios = List.map (fun red -> 1.0 -. red) rs in
        1.0 -. Report.gmean ratios)
      Exp_data.theta_grid
  in
  Report.Table.add_row t ("geo. mean" :: List.map Report.Table.cell_percent means);
  record_metric "size_reduction_geomean"
    (Report.Json.Obj
       (List.map2
          (fun theta m -> (Exp_data.theta_label theta, Report.Json.Float m))
          Exp_data.theta_grid means));
  let chart =
    Report.Chart.create ~title:"Figure 6 (mean size reduction vs θ)"
      ~x_labels:(List.map Exp_data.theta_label Exp_data.theta_grid) ~height:10 ()
  in
  Report.Chart.add_series chart ~name:"mean reduction" means;
  Report.Table.render t ^ "\n" ^ Report.Chart.render chart

(* ------------------------------------------------------------------ *)

let fig7 () =
  ignore
    (submit
       (grid_cells ~timing:true
          (List.map (fun (_, th) -> opts th) Exp_data.fig7_thetas)));
  let size_t =
    Report.Table.create
      ~title:
        "Figure 7(a): code size relative to squeezed code\n\
         (θ labels are the paper's; parenthesised values are our scaled θ)"
      (("Program", Report.Table.Left)
      :: List.map
           (fun (label, th) ->
             (Printf.sprintf "θ=%s (%g)" label th, Report.Table.Right))
           Exp_data.fig7_thetas)
  in
  let time_t =
    Report.Table.create
      ~title:"Figure 7(b): execution time relative to squeezed code (simulated cycles)"
      (("Program", Report.Table.Left)
      :: List.map
           (fun (label, th) ->
             (Printf.sprintf "θ=%s (%g)" label th, Report.Table.Right))
           Exp_data.fig7_thetas
      @ [ ("decompressions θ_max", Report.Table.Right) ])
  in
  let size_ratios = Hashtbl.create 8 and time_ratios = Hashtbl.create 8 in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let baseline = Exp_data.baseline_timing p in
      let size_cells, time_cells, last_stats =
        List.fold_left
          (fun (sc, tc, _) (label, theta) ->
            let r = Exp_data.squash_result p (opts theta) in
            let outcome, stats = Exp_data.timing_run p r in
            let sratio =
              float_of_int r.Squash.squashed_words
              /. float_of_int r.Squash.original_words
            in
            let tratio =
              float_of_int outcome.Vm.cycles /. float_of_int baseline.Vm.cycles
            in
            Hashtbl.replace size_ratios label
              (sratio :: Option.value ~default:[] (Hashtbl.find_opt size_ratios label));
            Hashtbl.replace time_ratios label
              (tratio :: Option.value ~default:[] (Hashtbl.find_opt time_ratios label));
            ( Report.Table.cell_float ~decimals:3 sratio :: sc,
              Report.Table.cell_float ~decimals:3 tratio :: tc,
              Some stats ))
          ([], [], None) Exp_data.fig7_thetas
      in
      Report.Table.add_row size_t (wl.Workload.name :: List.rev size_cells);
      Report.Table.add_row time_t
        (wl.Workload.name :: List.rev time_cells
        @ [ string_of_int
              (match last_stats with
              | Some s -> s.Runtime.decompressions
              | None -> 0) ]))
    Workloads.all;
  let add_means tbl ratios extra =
    Report.Table.add_separator tbl;
    Report.Table.add_row tbl
      ("geo. mean"
      :: List.map
           (fun (label, _) ->
             Report.Table.cell_float ~decimals:3
               (Report.gmean (Option.value ~default:[] (Hashtbl.find_opt ratios label))))
           Exp_data.fig7_thetas
      @ extra)
  in
  add_means size_t size_ratios [];
  add_means time_t time_ratios [ "" ];
  Report.Table.render size_t ^ "\n" ^ Report.Table.render time_t

(* ------------------------------------------------------------------ *)

let gamma () =
  ignore (submit (grid_cells [ opts 1.0 ]));
  let t =
    Report.Table.create
      ~title:
        "Section 3: achieved compression factor γ (compressed size incl. code\n\
         tables / original size of compressed regions); paper reports ≈ 0.66"
      [ ("Program", Report.Table.Left); ("γ at θ=1.0", Report.Table.Right);
        ("regions", Report.Table.Right); ("entries", Report.Table.Right) ]
  in
  let gs =
    with_all (fun p ->
        let r = Exp_data.squash_result p (opts 1.0) in
        let g = Squash.gamma_achieved r in
        Report.Table.add_row t
          [ p.Exp_data.wl.Workload.name; Report.Table.cell_float g;
            string_of_int (Array.length r.Squash.regions.Regions.regions);
            string_of_int (Hashtbl.length r.Squash.regions.Regions.entries) ];
        g)
  in
  Report.Table.add_separator t;
  Report.Table.add_row t
    [ "geo. mean"; Report.Table.cell_float (Report.gmean gs); ""; "" ];
  Report.Table.render t

(* ------------------------------------------------------------------ *)

let stubs () =
  let theta_aggressive = 0.01 in
  ignore (submit (grid_cells ~timing:true [ opts theta_aggressive ]));
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "Section 2.2: restore stubs at θ=%g (paper: compile-time stubs would\n\
            cost 13-27%% of never-compressed code; max 9 live runtime stubs)"
           theta_aggressive)
      [ ("Program", Report.Table.Left);
        ("compile-time stub share", Report.Table.Right);
        ("created", Report.Table.Right); ("reused", Report.Table.Right);
        ("max live", Report.Table.Right) ]
  in
  let shares = ref [] in
  let max_live = ref 0 in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let r = Exp_data.squash_result p (opts theta_aggressive) in
      (* What the compile-time scheme would cost: one 2-word stub per
         expanding call site in the compressed streams. *)
      let call_sites =
        Array.fold_left
          (fun acc (img : Rewrite.region_image) ->
            acc
            + List.length
                (List.filter
                   (function
                     | Rewrite.Expand_call _ | Rewrite.Expand_calli _ -> true
                     | Rewrite.Plain _ -> false)
                   img.Rewrite.words))
          0 r.Squash.squashed.Rewrite.images
      in
      let never = Rewrite.never_compressed_words r.Squash.squashed in
      let share = float_of_int (2 * call_sites) /. float_of_int never in
      shares := share :: !shares;
      let _, stats = Exp_data.timing_run p r in
      max_live := max !max_live stats.Runtime.max_live_stubs;
      Report.Table.add_row t
        [ wl.Workload.name; Report.Table.cell_percent share;
          string_of_int stats.Runtime.stub_creates;
          string_of_int stats.Runtime.stub_reuses;
          string_of_int stats.Runtime.max_live_stubs ])
    Workloads.all;
  Report.Table.add_separator t;
  Report.Table.add_row t
    [ "mean / max"; Report.Table.cell_percent
        (List.fold_left ( +. ) 0.0 !shares /. float_of_int (List.length !shares));
      ""; ""; string_of_int !max_live ];
  Report.Table.render t

(* ------------------------------------------------------------------ *)

let bsafe () =
  ignore (submit (grid_cells [ opts 0.0 ]));
  let t =
    Report.Table.create
      ~title:
        "Section 6.1: buffer-safe analysis at θ=0 (paper: ≈12.5% of regions\n\
         benefit; gsm and g721_enc the most)"
      [ ("Program", Report.Table.Left); ("safe funcs", Report.Table.Right);
        ("total funcs", Report.Table.Right);
        ("safe call sites in regions", Report.Table.Right);
        ("direct sites", Report.Table.Right);
        ("indirect sites", Report.Table.Right);
        ("share", Report.Table.Right) ]
  in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let r = Exp_data.squash_result p (opts 0.0) in
      let safe = List.length (Buffer_safe.safe_functions r.Squash.buffer_safe) in
      let total = List.length p.Exp_data.squeezed.Prog.funcs in
      let `Safe_calls sc, `Direct_calls dc, `Indirect_calls ic =
        Buffer_safe.stats p.Exp_data.squeezed r.Squash.buffer_safe
          ~in_region:(fun f b -> Regions.block_region r.Squash.regions f b <> None)
      in
      Report.Table.add_row t
        [ wl.Workload.name; string_of_int safe; string_of_int total;
          string_of_int sc; string_of_int dc; string_of_int ic;
          (if dc = 0 then "-" else Report.Table.cell_percent (float_of_int sc /. float_of_int dc)) ])
    Workloads.all;
  Report.Table.render t

(* ------------------------------------------------------------------ *)

let ablation () =
  let theta = 1e-3 in
  let base = opts theta in
  let variants =
    [ ("default", base);
      ("packing off", { base with Squash.pack = false });
      ("buffer-safe off", { base with Squash.use_buffer_safe = false });
      ("sharp buffer-safe", { base with Squash.sharp_buffer_safe = true });
      ("unswitch off", { base with Squash.unswitch = false });
      ("MTF coder", { base with Squash.coder = `Split_stream_mtf });
      ("LZSS coder", { base with Squash.coder = `Lzss });
      ("Context coder", { base with Squash.coder = `Context });
      ("linear regions", { base with Squash.regions_strategy = `Linear }) ]
  in
  ignore (submit (grid_cells (List.map snd variants)));
  let t =
    Report.Table.create
      ~title:(Printf.sprintf "Ablation at θ=%g: squashed size / squeezed size" theta)
      (("Program", Report.Table.Left)
      :: List.map (fun (name, _) -> (name, Report.Table.Right)) variants
      @ [ ("MTF Δbits", Report.Table.Right) ])
  in
  let sums = Hashtbl.create 8 in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let cells =
        List.map
          (fun (name, o) ->
            let r = Exp_data.squash_result p o in
            let ratio =
              float_of_int r.Squash.squashed_words
              /. float_of_int r.Squash.original_words
            in
            Hashtbl.replace sums name
              (ratio :: Option.value ~default:[] (Hashtbl.find_opt sums name));
            Report.Table.cell_float ~decimals:3 ratio)
          variants
      in
      let mtf_delta =
        let r = Exp_data.squash_result p base in
        let streams =
          Array.map
            (fun (img : Rewrite.region_image) -> img.Rewrite.stream)
            r.Squash.squashed.Rewrite.images
        in
        List.fold_left (fun acc (_, d) -> acc + d) 0 (Compress.mtf_gain_bits streams)
      in
      Report.Table.add_row t
        ((wl.Workload.name :: cells) @ [ string_of_int mtf_delta ]))
    Workloads.all;
  Report.Table.add_separator t;
  Report.Table.add_row t
    ("geo. mean"
    :: List.map
         (fun (name, _) ->
           Report.Table.cell_float ~decimals:3
             (Report.gmean (Option.value ~default:[] (Hashtbl.find_opt sums name))))
         variants
    @ [ "" ]);
  Report.Table.render t

(* ------------------------------------------------------------------ *)

let coders () =
  (* Head-to-head: the paper's split-stream coder vs the order-1 context
     coder, on everything the regions pass hands to the coder at θ=1.0
     (all compressible code).  Bits/instruction includes the shipped code
     tables, so a context model only wins by genuinely out-coding the
     baseline's single-code-per-stream scheme. *)
  let theta = 1.0 in
  let huff = opts theta in
  let ctx = { huff with Squash.coder = `Context } in
  ignore (submit (grid_cells [ huff; ctx ]));
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "Coder ablation at θ=%g: total compressed bits/instruction (incl. tables)"
           theta)
      [ ("Program", Report.Table.Left); ("instrs", Report.Table.Right);
        ("huffman b/i", Report.Table.Right); ("context b/i", Report.Table.Right);
        ("Δ", Report.Table.Right); ("huffman tbl", Report.Table.Right);
        ("context tbl", Report.Table.Right) ]
  in
  let wins = ref 0 and total = ref 0 in
  let ratios = ref [] in
  let stream_rows = Hashtbl.create 16 in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let bits_per_instr o =
        let r = Exp_data.squash_result p o in
        let codes = r.Squash.squashed.Rewrite.codes in
        let streams =
          Array.map
            (fun (img : Rewrite.region_image) -> img.Rewrite.stream)
            r.Squash.squashed.Rewrite.images
        in
        let stream_bits = Compress.stream_bits codes streams in
        let payload = List.fold_left (fun acc (_, b) -> acc + b) 0 stream_bits in
        let table = Compress.table_bits codes in
        let instrs = Squash.compressed_instr_count r in
        (payload + table, table, instrs, stream_bits)
      in
      let hb, ht, hi, h_streams = bits_per_instr huff in
      let cb, ct, ci, c_streams = bits_per_instr ctx in
      assert (hi = ci);
      let per i total = float_of_int total /. float_of_int (max 1 i) in
      incr total;
      if cb < hb then incr wins;
      ratios := (per hi (cb - hb) /. per hi hb) :: !ratios;
      List.iter
        (fun (name, b) ->
          let h, c = Option.value ~default:(0, 0) (Hashtbl.find_opt stream_rows name) in
          Hashtbl.replace stream_rows name (h + b, c))
        h_streams;
      List.iter
        (fun (name, b) ->
          let h, c = Option.value ~default:(0, 0) (Hashtbl.find_opt stream_rows name) in
          Hashtbl.replace stream_rows name (h, c + b))
        c_streams;
      Report.Table.add_row t
        [ wl.Workload.name; string_of_int hi;
          Report.Table.cell_float ~decimals:2 (per hi hb);
          Report.Table.cell_float ~decimals:2 (per ci cb);
          Report.Table.cell_percent ~decimals:1
            (float_of_int (cb - hb) /. float_of_int hb);
          string_of_int ht; string_of_int ct ])
    Workloads.all;
  Report.Table.add_separator t;
  Report.Table.add_row t
    [ Printf.sprintf "context wins %d/%d" !wins !total; ""; ""; ""; ""; ""; "" ];
  record_metric "coder_context_wins"
    (Report.Json.Obj
       [ ("wins", Report.Json.Int !wins); ("total", Report.Json.Int !total) ]);
  (* Where the bits move: per-stream totals summed over all workloads. *)
  let t2 =
    Report.Table.create
      ~title:"Per-stream payload bits, summed over all workloads (θ=1.0)"
      [ ("Stream", Report.Table.Left); ("huffman", Report.Table.Right);
        ("context", Report.Table.Right); ("Δ", Report.Table.Right) ]
  in
  List.iter
    (fun stream ->
      let name = Instr.stream_name stream in
      match Hashtbl.find_opt stream_rows name with
      | None -> ()
      | Some (h, c) ->
        Report.Table.add_row t2
          [ name; string_of_int h; string_of_int c;
            (if h = 0 then "-"
             else Report.Table.cell_percent ~decimals:1
                    (float_of_int (c - h) /. float_of_int h)) ])
    Instr.all_streams;
  Report.Table.render t ^ "\n" ^ Report.Table.render t2

(* ------------------------------------------------------------------ *)

let passes () =
  let theta = 1e-3 in
  ignore (submit (grid_cells [ opts theta ]));
  let pass_names = Pipeline.names (Pipeline.of_options (opts theta)) in
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "Pipeline: where squash time goes at θ=%g (per-pass wall clock, ms)"
           theta)
      (("Program", Report.Table.Left)
      :: List.map (fun n -> (n, Report.Table.Right)) pass_names
      @ [ ("total", Report.Table.Right) ])
  in
  let sums = Hashtbl.create 8 in
  let totals = ref [] in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let r = Exp_data.squash_result p (opts theta) in
      let stats = r.Squash.stats in
      let cells =
        List.map
          (fun name ->
            match
              List.find_opt
                (fun (s : Pass.stats) -> s.Pass.pass_name = name)
                stats.Pipeline.passes
            with
            | None -> "-"
            | Some s ->
              Hashtbl.replace sums name
                (s.Pass.elapsed_s
                +. Option.value ~default:0.0 (Hashtbl.find_opt sums name));
              Report.Table.cell_float ~decimals:2 (1000.0 *. s.Pass.elapsed_s))
          pass_names
      in
      totals := stats.Pipeline.total_s :: !totals;
      Report.Table.add_row t
        ((wl.Workload.name :: cells)
        @ [ Report.Table.cell_float ~decimals:2 (1000.0 *. stats.Pipeline.total_s) ]))
    Workloads.all;
  Report.Table.add_separator t;
  let grand_total = List.fold_left ( +. ) 0.0 !totals in
  Report.Table.add_row t
    (("sum (share)"
     :: List.map
          (fun name ->
            let s = Option.value ~default:0.0 (Hashtbl.find_opt sums name) in
            Printf.sprintf "%.2f (%s)" (1000.0 *. s)
              (if grand_total > 0.0 then
                 Report.Table.cell_percent ~decimals:1 (s /. grand_total)
               else "-"))
          pass_names)
    @ [ Report.Table.cell_float ~decimals:2 (1000.0 *. grand_total) ]);
  (* Before/after of the PR-2 packing rework: rebuild each workload's
     regions at the most aggressive threshold with the per-round rescan
     reference and with the incremental packer, on exactly the inputs the
     pipeline's regions pass saw.  The partitions are checked identical;
     only the time may differ. *)
  let theta_pack = 1.0 in
  let t2 =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "Region formation at θ=%g: per-round rescan reference vs incremental \
            packer (ms)"
           theta_pack)
      [ ("Program", Report.Table.Left); ("rescan", Report.Table.Right);
        ("incremental", Report.Table.Right); ("speedup", Report.Table.Right) ]
  in
  let tot_rescan = ref 0.0 and tot_inc = ref 0.0 in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let r = Exp_data.squash_result p (opts theta_pack) in
      let o = r.Squash.options in
      let prog = r.Squash.squashed.Rewrite.prog in
      let compressible f b =
        (not (List.mem f r.Squash.excluded_funcs))
        && (Cold.is_cold r.Squash.cold f b
           || Profile.freq p.Exp_data.profile f b = 0)
      in
      let params =
        {
          Regions.k_bytes = o.Squash.k_bytes;
          gamma = o.Squash.gamma;
          pack = o.Squash.pack;
          strategy = o.Squash.regions_strategy;
        }
      in
      let time packer =
        let t0 = Unix.gettimeofday () in
        let t = Regions.build ~packer prog ~compressible ~params in
        (Unix.gettimeofday () -. t0, t)
      in
      let d_rescan, t_rescan = time `Rescan in
      let d_inc, t_inc = time `Incremental in
      let fingerprint (t : Regions.t) =
        Array.map (fun (rg : Regions.region) -> rg.Regions.blocks) t.Regions.regions
      in
      if fingerprint t_rescan <> fingerprint t_inc then
        failwith (wl.Workload.name ^ ": packers disagree");
      tot_rescan := !tot_rescan +. d_rescan;
      tot_inc := !tot_inc +. d_inc;
      Report.Table.add_row t2
        [ wl.Workload.name;
          Report.Table.cell_float ~decimals:2 (1000.0 *. d_rescan);
          Report.Table.cell_float ~decimals:2 (1000.0 *. d_inc);
          Printf.sprintf "%.1fx" (d_rescan /. d_inc) ])
    Workloads.all;
  Report.Table.add_separator t2;
  let speedup = !tot_rescan /. !tot_inc in
  Report.Table.add_row t2
    [ "sum"; Report.Table.cell_float ~decimals:2 (1000.0 *. !tot_rescan);
      Report.Table.cell_float ~decimals:2 (1000.0 *. !tot_inc);
      Printf.sprintf "%.1fx" speedup ];
  record_metric "region_formation_rescan_s" (Report.Json.Float !tot_rescan);
  record_metric "region_formation_incremental_s" (Report.Json.Float !tot_inc);
  record_metric "region_formation_speedup" (Report.Json.Float speedup);
  Report.Table.render t ^ "\n" ^ Report.Table.render t2

(* ------------------------------------------------------------------ *)

let slots_counts = [ 1; 2; 4; 8 ]
let slots_thetas = [ 1e-3; 1e-2 ]

let slots_surface () =
  (* The Fig. 7-style surface for the region cache: slowdown vs squeezed
     as the slot count grows, at two aggressive thresholds.  Extra slots
     trade memory ((slots-1)·buffer_words words of RAM per benchmark) for
     fewer re-inflations; slots=1 already benefits from the resident-region
     fast path (a stub return into the still-materialised region is a
     cache hit, not a decompression). *)
  ignore
    (submit
       (List.concat_map
          (fun slots ->
            List.concat_map
              (fun theta ->
                List.map
                  (fun wl -> Exp_grid.cell ~timing:true ~slots wl (opts theta))
                  Workloads.all)
              slots_thetas)
          slots_counts));
  let hits_total = ref 0 in
  let metric_rows = ref [] in
  let sections =
    List.map
      (fun theta ->
        let t =
          Report.Table.create
            ~title:
              (Printf.sprintf
                 "Slots surface at θ=%s: slowdown vs squeezed\n\
                  (cells are time ratio, then decompressions/cache hits)"
                 (Exp_data.theta_label theta))
            (("Program", Report.Table.Left)
            :: List.map
                 (fun s -> (Printf.sprintf "slots=%d" s, Report.Table.Right))
                 slots_counts
            @ [ ("extra RAM (words)", Report.Table.Right) ])
        in
        let per_slot = Hashtbl.create 8 in
        List.iter
          (fun wl ->
            let p = Exp_data.prepare wl in
            let baseline = Exp_data.baseline_timing p in
            let r = Exp_data.squash_result p (opts theta) in
            let bw = r.Squash.squashed.Rewrite.buffer_words in
            let cells =
              List.map
                (fun slots ->
                  let outcome, stats = Exp_data.timing_run ~slots p r in
                  let ratio =
                    float_of_int outcome.Vm.cycles
                    /. float_of_int baseline.Vm.cycles
                  in
                  hits_total := !hits_total + stats.Runtime.cache_hits;
                  Hashtbl.replace per_slot slots
                    (ratio
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt per_slot slots));
                  metric_rows :=
                    Report.Json.Obj
                      [ ("workload", Report.Json.String wl.Workload.name);
                        ("theta", Report.Json.Float theta);
                        ("slots", Report.Json.Int slots);
                        ("time_ratio", Report.Json.Float ratio);
                        ("decompressions",
                         Report.Json.Int stats.Runtime.decompressions);
                        ("cache_hits", Report.Json.Int stats.Runtime.cache_hits);
                        ("cache_evictions",
                         Report.Json.Int stats.Runtime.cache_evictions) ]
                    :: !metric_rows;
                  Printf.sprintf "%.3f %d/%d" ratio stats.Runtime.decompressions
                    stats.Runtime.cache_hits)
                slots_counts
            in
            Report.Table.add_row t
              (wl.Workload.name :: cells
              @ [ string_of_int ((List.fold_left max 1 slots_counts - 1) * bw) ]))
          Workloads.all;
        Report.Table.add_separator t;
        Report.Table.add_row t
          ("geo. mean"
          :: List.map
               (fun slots ->
                 Report.Table.cell_float ~decimals:3
                   (Report.gmean
                      (Option.value ~default:[]
                         (Hashtbl.find_opt per_slot slots))))
               slots_counts
          @ [ "" ]);
        Report.Table.render t)
      slots_thetas
  in
  record_metric "cache_hits_total" (Report.Json.Int !hits_total);
  record_metric "slots_surface" (Report.Json.List (List.rev !metric_rows));
  String.concat "\n" sections

(* ------------------------------------------------------------------ *)

let p8_theta = 1e-3
let p8_periods = [ 1; 16; 64; 256 ]
let p8_seed = 7
let p8_decay_factor = 0.5
let p8_decay_steps = [ 1; 2; 4; 8 ]
let p8_truncate_keep = 16

(* The lifecycle axis: which profile guides compression.  Every variant is
   run on the drift input, so "exact(A)" is the realistic cross-input case
   (train on A, run on B) and "oracle(B)" its best-case bound. *)
let p8_specs =
  [ ("exact(A)", Exp_data.Pexact); ("oracle(B)", Exp_data.Poracle) ]
  @ List.map
      (fun period ->
        ( Printf.sprintf "sampled p=%d" period,
          Exp_data.Psampled { period; seed = p8_seed } ))
      p8_periods
  @ List.map
      (fun steps ->
        ( Printf.sprintf "decay n=%d" steps,
          Exp_data.Pdecayed { factor = p8_decay_factor; steps } ))
      p8_decay_steps
  @ [ ( Printf.sprintf "top-%d" p8_truncate_keep,
        Exp_data.Ptruncated { keep = p8_truncate_keep } ) ]

let lifecycle () =
  let o = opts p8_theta in
  ignore
    (submit
       (List.concat_map
          (fun (_, pspec) ->
            List.map
              (fun wl -> Exp_grid.cell ~timing:true ~pspec ~run_on:`Drift wl o)
              Workloads.all)
          p8_specs));
  let spec_cols =
    List.map (fun (name, _) -> (name, Report.Table.Right)) p8_specs
  in
  let t_size =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "P8(a): footprint under lifecycle profiles at θ=%g\n\
            (squashed/squeezed; compressed with the column's profile)"
           p8_theta)
      (("Program", Report.Table.Left) :: spec_cols)
  in
  let t_time =
    Report.Table.create
      ~title:
        "P8(b): slowdown on the drift input (cycles vs squeezed on the same \
         input)"
      (("Program", Report.Table.Left) :: spec_cols)
  in
  let t_dist =
    Report.Table.create
      ~title:
        "P8(c): profile distance to the drift-input oracle\n\
         (total variation on normalised block weights, 0=identical)"
      (("Program", Report.Table.Left) :: spec_cols)
  in
  let acc : (string, float list) Hashtbl.t = Hashtbl.create 64 in
  let push key v =
    Hashtbl.replace acc key (v :: Option.value ~default:[] (Hashtbl.find_opt acc key))
  in
  let mean_of key =
    Report.gmean (Option.value ~default:[] (Hashtbl.find_opt acc key))
  in
  let avg_of key =
    match Option.value ~default:[] (Hashtbl.find_opt acc key) with
    | [] -> 0.0
    | vs -> List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)
  in
  let metric_rows = ref [] in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let baseline = Exp_data.baseline_timing ~on:`Drift p in
      let oracle_profile = Exp_data.profile_for p Exp_data.Poracle in
      let size_cells, time_cells, dist_cells =
        List.fold_left
          (fun (sc, tc, dc) (name, pspec) ->
            let r = Exp_data.squash_result ~pspec p o in
            let outcome, _stats = Exp_data.timing_run ~pspec ~on:`Drift p r in
            let sratio =
              float_of_int r.Squash.squashed_words
              /. float_of_int r.Squash.original_words
            in
            let tratio =
              float_of_int outcome.Vm.cycles /. float_of_int baseline.Vm.cycles
            in
            let dist =
              Profile_ops.distance (Exp_data.profile_for p pspec) oracle_profile
            in
            push ("size:" ^ name) sratio;
            push ("time:" ^ name) tratio;
            push ("dist:" ^ name) dist;
            metric_rows :=
              Report.Json.Obj
                [ ("workload", Report.Json.String wl.Workload.name);
                  ("profile", Report.Json.String (Exp_data.spec_label pspec));
                  ("size_ratio", Report.Json.Float sratio);
                  ("time_ratio", Report.Json.Float tratio);
                  ("distance", Report.Json.Float dist) ]
              :: !metric_rows;
            ( Report.Table.cell_float ~decimals:3 sratio :: sc,
              Report.Table.cell_float ~decimals:3 tratio :: tc,
              Report.Table.cell_float ~decimals:3 dist :: dc ))
          ([], [], []) p8_specs
      in
      Report.Table.add_row t_size (wl.Workload.name :: List.rev size_cells);
      Report.Table.add_row t_time (wl.Workload.name :: List.rev time_cells);
      Report.Table.add_row t_dist (wl.Workload.name :: List.rev dist_cells))
    Workloads.all;
  let add_mean tbl kind agg =
    Report.Table.add_separator tbl;
    Report.Table.add_row tbl
      ((match agg with `Geo -> "geo. mean" | `Avg -> "mean")
      :: List.map
           (fun (name, _) ->
             Report.Table.cell_float ~decimals:3
               (match agg with
               | `Geo -> mean_of (kind ^ ":" ^ name)
               | `Avg -> avg_of (kind ^ ":" ^ name)))
           p8_specs)
  in
  add_mean t_size "size" `Geo;
  add_mean t_time "time" `Geo;
  add_mean t_dist "dist" `Avg;
  (* Degradation surfaces: fidelity (sampling period) and staleness
     (decay applications) against footprint, slowdown and distance. *)
  let chart_fidelity =
    Report.Chart.create
      ~title:
        "P8: degradation vs sampling period (geo-mean footprint & slowdown,\n\
         mean distance to oracle; drift-input runs)"
      ~x_labels:(List.map string_of_int p8_periods)
      ~height:12 ()
  in
  let series kind agg names =
    List.map
      (fun n ->
        match agg with `Geo -> mean_of (kind ^ ":" ^ n) | `Avg -> avg_of (kind ^ ":" ^ n))
      names
  in
  let sampled_names = List.map (fun p -> Printf.sprintf "sampled p=%d" p) p8_periods in
  Report.Chart.add_series chart_fidelity ~name:"footprint"
    (series "size" `Geo sampled_names);
  Report.Chart.add_series chart_fidelity ~name:"slowdown"
    (series "time" `Geo sampled_names);
  Report.Chart.add_series chart_fidelity ~name:"distance"
    (series "dist" `Avg sampled_names);
  let chart_staleness =
    Report.Chart.create
      ~title:
        (Printf.sprintf
           "P8: degradation vs staleness (decay %g applied n times)"
           p8_decay_factor)
      ~x_labels:(List.map string_of_int p8_decay_steps)
      ~height:12 ()
  in
  let decayed_names = List.map (fun n -> Printf.sprintf "decay n=%d" n) p8_decay_steps in
  Report.Chart.add_series chart_staleness ~name:"footprint"
    (series "size" `Geo decayed_names);
  Report.Chart.add_series chart_staleness ~name:"slowdown"
    (series "time" `Geo decayed_names);
  Report.Chart.add_series chart_staleness ~name:"distance"
    (series "dist" `Avg decayed_names);
  record_metric "lifecycle" (Report.Json.List (List.rev !metric_rows));
  (* Iterative stability: squash, re-profile the squashed image on the
     profiling input (buffer executions are unattributable, so compressed
     code stays cold), re-squash with the derived profile, and require the
     footprint to settle.  Each intermediate image's behaviour is checked
     against the unsquashed profiling run. *)
  let t_stab =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "P8(d): iterative stability at θ=%g — squash, re-profile the \
            squashed image, re-squash\n\
            (squashed words per iteration; Δ is the last step's relative \
            change)"
           p8_theta)
      [ ("Program", Report.Table.Left); ("iter0", Report.Table.Right);
        ("iter1", Report.Table.Right); ("iter2", Report.Table.Right);
        ("Δ last", Report.Table.Right); ("reprofile dist", Report.Table.Right) ]
  in
  let stab_rows = ref [] in
  List.iter
    (fun wl ->
      let p = Exp_data.prepare wl in
      let verify (outcome : Vm.outcome) =
        if
          outcome.Vm.output <> p.Exp_data.profile_outcome.Vm.output
          || outcome.Vm.exit_code <> p.Exp_data.profile_outcome.Vm.exit_code
        then
          failwith
            (wl.Workload.name
           ^ ": squashed image diverged on the profiling input during \
              re-profiling")
      in
      let input = Workload.profiling_input wl in
      let r0 = Exp_data.squash_result p o in
      let prof1, out0 = Exp_data.reprofile_squashed r0 ~input in
      verify out0;
      let r1 = Exp_data.squash_with_profile p o prof1 in
      let prof2, out1 = Exp_data.reprofile_squashed r1 ~input in
      verify out1;
      let r2 = Exp_data.squash_with_profile p o prof2 in
      let _, out2 = Exp_data.reprofile_squashed r2 ~input in
      verify out2;
      let s0 = r0.Squash.squashed_words in
      let s1 = r1.Squash.squashed_words in
      let s2 = r2.Squash.squashed_words in
      let delta = Float.abs (float_of_int (s2 - s1)) /. float_of_int (max 1 s1) in
      if delta > 0.10 then
        failwith
          (Printf.sprintf "%s: iterative re-squash did not converge (Δ=%.1f%%)"
             wl.Workload.name (100.0 *. delta));
      let rdist = Profile_ops.distance p.Exp_data.profile prof1 in
      stab_rows :=
        Report.Json.Obj
          [ ("workload", Report.Json.String wl.Workload.name);
            ("iter0", Report.Json.Int s0); ("iter1", Report.Json.Int s1);
            ("iter2", Report.Json.Int s2); ("delta", Report.Json.Float delta);
            ("reprofile_distance", Report.Json.Float rdist) ]
        :: !stab_rows;
      Report.Table.add_row t_stab
        [ wl.Workload.name; string_of_int s0; string_of_int s1; string_of_int s2;
          Report.Table.cell_percent ~decimals:2 delta;
          Report.Table.cell_float ~decimals:3 rdist ])
    Workloads.all;
  record_metric "lifecycle_stability" (Report.Json.List (List.rev !stab_rows));
  String.concat "\n"
    [ Report.Table.render t_size; Report.Table.render t_time;
      Report.Table.render t_dist; Report.Chart.render chart_fidelity;
      Report.Chart.render chart_staleness; Report.Table.render t_stab ]

let all =
  [ ("T1", table1); ("F3", fig3); ("F4", fig4); ("F5", fig5); ("F6", fig6);
    ("F7", fig7); ("S3-gamma", gamma); ("S2-stubs", stubs); ("S6-bsafe", bsafe);
    ("A1-ablation", ablation); ("C1-coders", coders); ("P1-passes", passes);
    ("S7-slots", slots_surface); ("P8-lifecycle", lifecycle) ]
