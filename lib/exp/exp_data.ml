type prepared = {
  wl : Workload.t;
  input_prog : Prog.t;
  squeezed : Prog.t;
  squeeze_stats : Squeeze.stats;
  profile : Profile.t;
  profile_outcome : Vm.outcome;
  baseline_timing : Vm.outcome Lazy.t;
}

let fuel = 2_000_000_000

let prepared_cache : (string, prepared) Hashtbl.t = Hashtbl.create 16

let prepare (wl : Workload.t) =
  match Hashtbl.find_opt prepared_cache wl.Workload.name with
  | Some p -> p
  | None ->
    let compiled = Workload.compile wl in
    let input_prog = Squeeze.remove_unreachable compiled in
    let squeezed, squeeze_stats = Squeeze.run compiled in
    let profile, profile_outcome =
      Profile.collect ~fuel squeezed ~input:(Workload.profiling_input wl)
    in
    let baseline_timing =
      lazy
        (Vm.run
           (Vm.of_image ~fuel (Layout.emit squeezed)
              ~input:(Workload.timing_input wl)))
    in
    let p =
      {
        wl;
        input_prog;
        squeezed;
        squeeze_stats;
        profile;
        profile_outcome;
        baseline_timing;
      }
    in
    Hashtbl.replace prepared_cache wl.Workload.name p;
    p

let squash_cache : (string * Squash.options, Squash.result) Hashtbl.t =
  Hashtbl.create 64

let squash_result p options =
  let key = (p.wl.Workload.name, options) in
  match Hashtbl.find_opt squash_cache key with
  | Some r -> r
  | None ->
    let r = Squash.run ~options p.squeezed p.profile in
    Hashtbl.replace squash_cache key r;
    r

let timing_run p (r : Squash.result) =
  let input = Workload.timing_input p.wl in
  let outcome, stats = Runtime.run ~fuel r.Squash.squashed ~input in
  let baseline = Lazy.force p.baseline_timing in
  if
    outcome.Vm.output <> baseline.Vm.output
    || outcome.Vm.exit_code <> baseline.Vm.exit_code
  then
    failwith
      (Printf.sprintf "%s: squashed program diverged from baseline (θ=%g)"
         p.wl.Workload.name r.Squash.options.Squash.theta);
  (outcome, stats)

let theta_grid = [ 0.0; 1e-5; 5e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 ]

(* The intentional θ rescale of DESIGN.md §4 ("θ scale"): the paper counts
   θ against profiling runs of billions of instructions, ours run millions,
   so the paper's cold-block cutoffs correspond to θ roughly an order of
   magnitude larger here.  Each paper point is multiplied by this factor
   and snapped to the log-nearest {!theta_grid} member so Fig. 7 reuses
   cached squash results.  The label/value pairs below are DERIVED — a
   hand-edit that makes labels equal values silently corrupts F7a/F7b. *)
let theta_rescale = 10.0

let snap_to_grid t =
  if t = 0.0 then 0.0
  else
    let dist g = Float.abs (Float.log10 g -. Float.log10 t) in
    List.fold_left
      (fun best g -> if g > 0.0 && dist g < dist best then g else best)
      1.0 theta_grid

let paper_theta_label t =
  if t = 0.0 then "0.0"
  else
    let e = int_of_float (Float.floor (Float.log10 t +. 1e-9)) in
    Printf.sprintf "%ge%d" (t /. Float.pow 10.0 (float_of_int e)) e

let fig7_thetas =
  List.map
    (fun paper -> (paper_theta_label paper, snap_to_grid (paper *. theta_rescale)))
    [ 0.0; 1e-5; 5e-5 ]

let theta_label theta =
  if theta = 0.0 then "0.0"
  else if theta >= 0.01 then Printf.sprintf "%g" theta
  else Printf.sprintf "%.0e" theta
