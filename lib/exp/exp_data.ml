type prepared = {
  wl : Workload.t;
  digest : string;
  input_prog : Prog.t;
  squeezed : Prog.t;
  squeeze_stats : Squeeze.stats;
  profile : Profile.t;
  profile_outcome : Vm.outcome;
}

let fuel = 2_000_000_000

(* The persistent cache (None = disabled).  The bench driver and squashc
   point this at _cache/; the test suite at temporary directories. *)
let cache : Cache.t option ref = ref None

let set_cache c = cache := c
let current_cache () = !cache

let workload_digest (wl : Workload.t) =
  Cache.digest
    [ wl.Workload.source; Workload.profiling_input wl; Workload.timing_input wl;
      Workload.drift_input wl ]

let options_key (o : Squash.options) =
  Printf.sprintf
    "o2;theta=%h;k=%d;gamma=%h;pack=%b;bsafe=%b;sharp=%b;unswitch=%b;decomp=%d;stubs=%d;coder=%s;regions=%s"
    o.Squash.theta o.Squash.k_bytes o.Squash.gamma o.Squash.pack
    o.Squash.use_buffer_safe o.Squash.sharp_buffer_safe o.Squash.unswitch
    o.Squash.decomp_words
    o.Squash.max_stubs
    (match o.Squash.coder with
    | `Split_stream -> "huffman"
    | `Split_stream_mtf -> "mtf"
    | `Lzss -> "lzss"
    | `Context -> "context")
    (match o.Squash.regions_strategy with `Dfs -> "dfs" | `Linear -> "linear")

(* In-process memo tables.  Every one is a domain-safe compute-once table
   keyed by content digest (plus the option fingerprint where relevant), so
   concurrent engine jobs share work instead of duplicating it, and a
   changed workload can never serve a stale entry. *)
let prepared_memo : prepared Memo.t = Memo.create ()
let baseline_memo : Vm.outcome Memo.t = Memo.create ()
let squash_memo : Squash.result Memo.t = Memo.create ()
let timing_memo : (Vm.outcome * Runtime.stats) Memo.t = Memo.create ()
let profile_memo : Profile.t Memo.t = Memo.create ()

let reset () =
  Memo.clear prepared_memo;
  Memo.clear baseline_memo;
  Memo.clear squash_memo;
  Memo.clear timing_memo;
  Memo.clear profile_memo

let prepare (wl : Workload.t) =
  let digest = workload_digest wl in
  Memo.get prepared_memo
    (wl.Workload.name ^ ":" ^ digest)
    (fun () ->
      let input_prog, squeezed, squeeze_stats, profile, profile_outcome =
        Cache.memo !cache ~kind:"prepared" ~key:digest (fun () ->
            let compiled = Workload.compile wl in
            let input_prog = Squeeze.remove_unreachable compiled in
            let squeezed, squeeze_stats = Squeeze.run compiled in
            let profile, profile_outcome =
              Profile.collect ~fuel squeezed
                ~input:(Workload.profiling_input wl)
            in
            (input_prog, squeezed, squeeze_stats, profile, profile_outcome))
      in
      { wl; digest; input_prog; squeezed; squeeze_stats; profile;
        profile_outcome })

(* ------------------------------------------------------------------ *)
(* Profile provenance (lifecycle experiments).  A [profile_spec] names
   which profile guides compression; its label is part of every memo and
   persistent-cache key downstream, so an estimated (sampled / decayed /
   truncated) profile can never alias the exact one in [_cache/]. *)

type profile_spec =
  | Pexact
  | Poracle
  | Psampled of { period : int; seed : int }
  | Pdecayed of { factor : float; steps : int }
  | Ptruncated of { keep : int }

let spec_label = function
  | Pexact -> "exact"
  | Poracle -> "oracle"
  | Psampled { period; seed } -> Printf.sprintf "sampled;p=%d;s=%d" period seed
  | Pdecayed { factor; steps } -> Printf.sprintf "decay;f=%h;n=%d" factor steps
  | Ptruncated { keep } -> Printf.sprintf "trunc;k=%d" keep

type run_input = [ `Timing | `Drift ]

let run_label = function `Timing -> "timing" | `Drift -> "drift"

let run_input_string p = function
  | `Timing -> Workload.timing_input p.wl
  | `Drift -> Workload.drift_input p.wl

let profile_for p spec =
  match spec with
  | Pexact -> p.profile
  | _ ->
    Memo.get profile_memo
      (p.digest ^ "|" ^ spec_label spec)
      (fun () ->
        Cache.memo !cache ~kind:"profile"
          ~key:(Cache.digest [ p.digest; spec_label spec ])
          (fun () ->
            match spec with
            | Pexact -> p.profile
            | Poracle ->
              fst (Profile.collect ~fuel p.squeezed ~input:(Workload.drift_input p.wl))
            | Psampled { period; seed } ->
              fst
                (Profile.collect_sampled ~fuel ~period ~seed p.squeezed
                   ~input:(Workload.profiling_input p.wl))
            | Pdecayed { factor; steps } ->
              let rec go n prof =
                if n <= 0 then prof else go (n - 1) (Profile_ops.decay prof ~factor)
              in
              go steps p.profile
            | Ptruncated { keep } -> Profile_ops.truncate_top p.profile ~keep))

let baseline_timing ?(on = `Timing) p =
  let key = p.digest ^ "|run=" ^ run_label on in
  Memo.get baseline_memo key (fun () ->
      Cache.memo !cache ~kind:"baseline"
        ~key:(Cache.digest [ p.digest; run_label on ])
        (fun () ->
          Vm.run
            (Vm.of_image ~fuel (Layout.emit p.squeezed) ~input:(run_input_string p on))))

let squash_result ?(pspec = Pexact) p options =
  let okey = options_key options ^ "|profile=" ^ spec_label pspec in
  Memo.get squash_memo (p.digest ^ "|" ^ okey) (fun () ->
      Cache.memo !cache ~kind:"squash"
        ~key:(Cache.digest [ p.digest; okey ])
        (fun () -> Squash.run ~options p.squeezed (profile_for p pspec)))

let squash_with_profile p options profile =
  Squash.run ~options p.squeezed profile

let timing_run ?(slots = 1) ?(pspec = Pexact) ?(on = `Timing) p (r : Squash.result) =
  let okey =
    options_key r.Squash.options
    ^ (if slots = 1 then "" else Printf.sprintf "|slots=%d" slots)
    ^ "|profile=" ^ spec_label pspec ^ "|run=" ^ run_label on
  in
  Memo.get timing_memo (p.digest ^ "|" ^ okey) (fun () ->
      (* The divergence check runs before the entry is persisted, so a
         cached timing outcome is always a verified one. *)
      Cache.memo !cache ~kind:"timing"
        ~key:(Cache.digest [ p.digest; okey ])
        (fun () ->
          let input = run_input_string p on in
          let outcome, stats = Runtime.run ~fuel ~slots r.Squash.squashed ~input in
          let baseline = baseline_timing ~on p in
          if
            outcome.Vm.output <> baseline.Vm.output
            || outcome.Vm.exit_code <> baseline.Vm.exit_code
          then
            failwith
              (Printf.sprintf
                 "%s: squashed program diverged from baseline (θ=%g, profile=%s, \
                  run=%s)"
                 p.wl.Workload.name r.Squash.options.Squash.theta (spec_label pspec)
                 (run_label on));
          (outcome, stats)))

(* Re-profile an already-squashed image: run it under the profiling VM and
   map per-word counts back to source blocks through the rewrite's owner
   array.  Executions inside the decompression buffer fall outside the
   owned words, exactly like a PC sampler that cannot attribute scratch
   addresses — compressed (cold) code is invisible to the re-profile. *)
let reprofile_squashed (r : Squash.result) ~input =
  let vm, _stats = Runtime.launch ~fuel ~profile:true r.Squash.squashed ~input in
  let outcome = Vm.run vm in
  let counts = Option.get (Vm.counts vm) in
  let owners = r.Squash.squashed.Rewrite.text.Easm.owners in
  let acc = Hashtbl.create 512 in
  Array.iteri
    (fun i owner ->
      match owner with
      | None -> ()
      | Some key ->
        if i < Array.length counts && counts.(i) > 0 then begin
          let freq0, weight0 =
            Option.value ~default:(0, 0) (Hashtbl.find_opt acc key)
          in
          let first = i = 0 || owners.(i - 1) <> Some key in
          Hashtbl.replace acc key
            ((if first then counts.(i) else freq0), weight0 + counts.(i))
        end)
    owners;
  let profile =
    Profile.of_entries ~source:(Profile.Derived "reprofile")
      (Hashtbl.fold
         (fun k (f, w) lst -> ((k, f, w) : (string * int) * int * int) :: lst)
         acc []
      |> List.sort compare)
  in
  (profile, outcome)

let theta_grid = [ 0.0; 1e-5; 5e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 ]

(* The intentional θ rescale of DESIGN.md §4 ("θ scale"): the paper counts
   θ against profiling runs of billions of instructions, ours run millions,
   so the paper's cold-block cutoffs correspond to θ roughly an order of
   magnitude larger here.  Each paper point is multiplied by this factor
   and snapped to the log-nearest {!theta_grid} member so Fig. 7 reuses
   cached squash results.  The label/value pairs below are DERIVED — a
   hand-edit that makes labels equal values silently corrupts F7a/F7b. *)
let theta_rescale = 10.0

let snap_to_grid t =
  if t = 0.0 then 0.0
  else
    let dist g = Float.abs (Float.log10 g -. Float.log10 t) in
    List.fold_left
      (fun best g -> if g > 0.0 && dist g < dist best then g else best)
      1.0 theta_grid

let paper_theta_label t =
  if t = 0.0 then "0.0"
  else
    let e = int_of_float (Float.floor (Float.log10 t +. 1e-9)) in
    Printf.sprintf "%ge%d" (t /. Float.pow 10.0 (float_of_int e)) e

let fig7_thetas =
  List.map
    (fun paper -> (paper_theta_label paper, snap_to_grid (paper *. theta_rescale)))
    [ 0.0; 1e-5; 5e-5 ]

let theta_label theta =
  if theta = 0.0 then "0.0"
  else if theta >= 0.01 then Printf.sprintf "%g" theta
  else Printf.sprintf "%.0e" theta
