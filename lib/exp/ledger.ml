let default_dir = "_bench"

let history_name = "history.jsonl"

(* Dereference .git/HEAD by hand: the harness must not shell out to git
   (benchmarks run with the working directory as their only interface, and
   a subprocess would also pollute the engine-span trace).  Handles the
   three on-disk encodings: detached HEAD (raw hex), a loose ref file, and
   a ref packed into .git/packed-refs. *)
let git_rev ?(repo_root = ".") () =
  let read_line_of path =
    match open_in path with
    | exception Sys_error _ -> None
    | ic ->
      let l = try Some (String.trim (input_line ic)) with End_of_file -> None in
      close_in_noerr ic;
      l
  in
  let is_hex s =
    String.length s = 40
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         s
  in
  let git = Filename.concat repo_root ".git" in
  match read_line_of (Filename.concat git "HEAD") with
  | None -> None
  | Some head ->
    if is_hex head then Some head
    else
      let prefix = "ref: " in
      let plen = String.length prefix in
      if String.length head <= plen || String.sub head 0 plen <> prefix then
        None
      else
        let ref_name = String.sub head plen (String.length head - plen) in
        let loose =
          match read_line_of (Filename.concat git ref_name) with
          | Some l when is_hex l -> Some l
          | Some _ | None -> None
        in
        let packed () =
          match open_in (Filename.concat git "packed-refs") with
          | exception Sys_error _ -> None
          | ic ->
            let found = ref None in
            (try
               while !found = None do
                 let line = String.trim (input_line ic) in
                 (* "<40-hex> <refname>"; '^' lines are peeled tags. *)
                 if String.length line > 41 && line.[0] <> '#' && line.[0] <> '^'
                 then
                   let hex = String.sub line 0 40 in
                   let name = String.sub line 41 (String.length line - 41) in
                   if is_hex hex && name = ref_name then found := Some hex
               done
             with End_of_file -> ());
            close_in_noerr ic;
            !found
        in
        (match loose with Some _ -> loose | None -> packed ())

let timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ?(dir = default_dir) doc =
  let path = Filename.concat dir history_name in
  match
    mkdir_p dir;
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    in
    output_string oc (Report.Json.to_string doc);
    output_char oc '\n';
    close_out oc
  with
  | () -> Ok path
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
