type cell = {
  wl : Workload.t;
  options : Squash.options;
  timing : bool;
  slots : int;
  pspec : Exp_data.profile_spec;
  run_on : Exp_data.run_input;
}

let cell ?(timing = false) ?(slots = 1) ?(pspec = Exp_data.Pexact)
    ?(run_on = `Timing) wl options =
  { wl; options; timing; slots; pspec; run_on }

let cell_label c =
  Printf.sprintf "%s θ=%s K=%d%s%s%s%s" c.wl.Workload.name
    (Exp_data.theta_label c.options.Squash.theta)
    c.options.Squash.k_bytes
    (if c.slots = 1 then "" else Printf.sprintf " slots=%d" c.slots)
    (match c.pspec with
    | Exp_data.Pexact -> ""
    | s -> " p=" ^ Exp_data.spec_label s)
    (match c.run_on with `Timing -> "" | `Drift -> " run=drift")
    (if c.timing then " +timing" else "")

type metrics = {
  original_words : int;
  squashed_words : int;
  size_ratio : float;
  size_reduction : float;
  coder : string;
  table_bits : int;
  cycles : int option;
  baseline_cycles : int option;
  time_ratio : float option;
  decompressions : int option;
  runtime : Runtime.stats option;
}

type outcome = (metrics, Engine.job_error) result
type results = (cell * outcome) list

let jobs_override : int option ref = ref None
let set_jobs j = jobs_override := j
let jobs () = match !jobs_override with Some j -> j | None -> Engine.default_jobs ()

let obs_sink : Obs.t option ref = ref None
let set_obs o = obs_sink := o

let parse_injection s =
  match String.index_opt s '@' with
  | Some i -> (
    let name = String.sub s 0 i in
    let theta = String.sub s (i + 1) (String.length s - i - 1) in
    match float_of_string_opt theta with
    | Some th when name <> "" -> Some (name, th)
    | _ -> None)
  | None -> None

let injected : (string * float) option ref =
  ref
    (match Sys.getenv_opt "PGCC_INJECT_TRAP" with
    | Some s -> parse_injection s
    | None -> None)

let set_injected_failure v = injected := v

let eval_cell c =
  (match !injected with
  | Some (name, theta)
    when name = c.wl.Workload.name && theta = c.options.Squash.theta ->
    raise (Vm.Trap { pc = 0; reason = "injected fault" })
  | _ -> ());
  let p = Exp_data.prepare c.wl in
  let r = Exp_data.squash_result ~pspec:c.pspec p c.options in
  let cycles, baseline_cycles, time_ratio, decompressions, runtime =
    if c.timing then begin
      let outcome, stats =
        Exp_data.timing_run ~slots:c.slots ~pspec:c.pspec ~on:c.run_on p r
      in
      let baseline = Exp_data.baseline_timing ~on:c.run_on p in
      (* The timing run may have been served from the memo or the
         persistent cache, in which case no live runtime events fired;
         replaying the aggregates keeps the metrics snapshot identical
         on cold and warm paths. *)
      (match !obs_sink with
      | None -> ()
      | Some o -> Runtime.observe_stats o stats);
      ( Some outcome.Vm.cycles,
        Some baseline.Vm.cycles,
        Some (float_of_int outcome.Vm.cycles /. float_of_int baseline.Vm.cycles),
        Some stats.Runtime.decompressions,
        Some stats )
    end
    else (None, None, None, None, None)
  in
  let original_words = r.Squash.original_words in
  let squashed_words = r.Squash.squashed_words in
  {
    original_words;
    squashed_words;
    size_ratio = float_of_int squashed_words /. float_of_int original_words;
    size_reduction = Squash.size_reduction r;
    coder = Compress.coder_name r.Squash.squashed.Rewrite.codes;
    table_bits = Compress.table_bits r.Squash.squashed.Rewrite.codes;
    cycles;
    baseline_cycles;
    time_ratio;
    decompressions;
    runtime;
  }

let classify = function
  | Vm.Trap { pc; reason } when reason = "out of fuel" ->
    (`Fuel, Printf.sprintf "out of fuel at pc=0x%x" pc)
  | Vm.Trap { pc; reason } -> (`Trap, Printf.sprintf "%s at pc=0x%x" reason pc)
  | Pipeline.Check_failed { pass; errors } ->
    (`Invariant,
     Printf.sprintf "pass %S broke an invariant: %s" pass
       (String.concat "; " errors))
  | Bitio.Corrupt_stream msg -> (`Failed, "corrupt stream: " ^ msg)
  | Failure msg -> (`Failed, msg)
  | e -> (`Exception, Printexc.to_string e)

let run ?jobs:j cells =
  let jobs = match j with Some j -> j | None -> jobs () in
  let arr = Array.of_list cells in
  let results, stats =
    Engine.run ~jobs ?obs:!obs_sink ~classify
      ~label:(fun i -> cell_label arr.(i))
      (List.map (fun c () -> eval_cell c) cells)
  in
  (List.combine cells (Array.to_list results), stats)

let failures results =
  List.filter_map
    (function _, Error (e : Engine.job_error) -> Some e | _, Ok _ -> None)
    results

let opt_cell to_s = function None -> "-" | Some v -> to_s v

let render_table (results : results) =
  let t =
    Report.Table.create ~title:"Experiment grid"
      [ ("Program", Report.Table.Left); ("theta", Report.Table.Right);
        ("K", Report.Table.Right); ("squeezed", Report.Table.Right);
        ("squashed", Report.Table.Right); ("ratio", Report.Table.Right);
        ("cycles x", Report.Table.Right); ("decomp", Report.Table.Right);
        ("status", Report.Table.Left) ]
  in
  List.iter
    (fun (c, outcome) ->
      let row =
        match outcome with
        | Ok m ->
          [ c.wl.Workload.name;
            Exp_data.theta_label c.options.Squash.theta;
            string_of_int c.options.Squash.k_bytes;
            string_of_int m.original_words; string_of_int m.squashed_words;
            Report.Table.cell_float ~decimals:3 m.size_ratio;
            opt_cell (Report.Table.cell_float ~decimals:3) m.time_ratio;
            opt_cell string_of_int m.decompressions; "ok" ]
        | Error e ->
          [ c.wl.Workload.name;
            Exp_data.theta_label c.options.Squash.theta;
            string_of_int c.options.Squash.k_bytes; "-"; "-"; "-"; "-"; "-";
            Printf.sprintf "FAILED [%s] %s"
              (Engine.kind_to_string e.Engine.kind)
              e.Engine.message ]
      in
      Report.Table.add_row t row)
    results;
  Report.Table.render t

let cell_json (c, outcome) =
  let base =
    [ ("workload", Report.Json.String c.wl.Workload.name);
      ("theta", Report.Json.Float c.options.Squash.theta);
      ("k_bytes", Report.Json.Int c.options.Squash.k_bytes);
      ("options", Report.Json.String (Exp_data.options_key c.options));
      ("slots", Report.Json.Int c.slots);
      ("profile", Report.Json.String (Exp_data.spec_label c.pspec));
      ("run_on", Report.Json.String (Exp_data.run_label c.run_on));
      ("timing", Report.Json.Bool c.timing) ]
  in
  match outcome with
  | Ok m ->
    Report.Json.Obj
      (base
      @ [ ("status", Report.Json.String "ok");
          ("original_words", Report.Json.Int m.original_words);
          ("squashed_words", Report.Json.Int m.squashed_words);
          ("size_ratio", Report.Json.Float m.size_ratio);
          ("size_reduction", Report.Json.Float m.size_reduction);
          ("coder", Report.Json.String m.coder);
          ("table_bits", Report.Json.Int m.table_bits) ]
      @ (match m.cycles with
        | None -> []
        | Some cy ->
          [ ("cycles", Report.Json.Int cy);
            ("baseline_cycles",
             Report.Json.Int (Option.value ~default:0 m.baseline_cycles));
            ("time_ratio",
             Report.Json.Float (Option.value ~default:Float.nan m.time_ratio));
            ("decompressions",
             Report.Json.Int (Option.value ~default:0 m.decompressions)) ])
      @ (match m.runtime with
        | None -> []
        | Some st -> [ ("runtime", Runtime.stats_to_json st) ]))
  | Error e ->
    Report.Json.Obj
      (base
      @ [ ("status", Report.Json.String "failed");
          ("error", Engine.error_json e) ])

let to_json results = Report.Json.List (List.map cell_json results)

let to_csv (results : results) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "workload,theta,k_bytes,status,original_words,squashed_words,size_ratio,cycles,baseline_cycles,decompressions\n";
  List.iter
    (fun (c, outcome) ->
      let name = c.wl.Workload.name in
      let theta = Printf.sprintf "%g" c.options.Squash.theta in
      let k = string_of_int c.options.Squash.k_bytes in
      (match outcome with
      | Ok m ->
        Buffer.add_string b
          (Printf.sprintf "%s,%s,%s,ok,%d,%d,%.6f,%s,%s,%s\n" name theta k
             m.original_words m.squashed_words m.size_ratio
             (opt_cell string_of_int m.cycles)
             (opt_cell string_of_int m.baseline_cycles)
             (opt_cell string_of_int m.decompressions))
      | Error e ->
        Buffer.add_string b
          (Printf.sprintf "%s,%s,%s,failed:%s,,,,,,\n" name theta k
             (Engine.kind_to_string e.Engine.kind))))
    results;
  Buffer.contents b
