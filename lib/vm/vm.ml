exception Trap of { pc : int; reason : string }

type sampler = { period : int; seed : int }

type t = {
  mem : int array;  (* word-indexed *)
  decoded : Instr.t option array;
  regs : int array;
  mutable pc : int;
  mutable running : bool;
  mutable exit_code : int option;
  mutable icount : int;
  mutable cycles : int;
  mutable fuel : int;
  cost : Cost.model;
  input : string;
  mutable in_pos : int;
  output : Buffer.t;
  counts : int array option;
  text_base : int;
  text_words : int;
  mutable hook_lo : int;
  mutable hook_hi : int;
  hooks : (int, t -> unit) Hashtbl.t;
  mutable heap_break : int;
  mutable hook_invocations : int;
  mutable obs : Obs.t option;
  sampler : sampler option;
  mutable sample_countdown : int;
  mutable sample_rng : int;
  mutable sample_hits : int;
  mutable sample_skips : int;
}

let trap t reason = raise (Trap { pc = t.pc; reason })

let mem_words = Layout.mem_bytes / 4

(* Deterministic xorshift step, kept positive so [mod] below is safe. *)
let xorshift s =
  let s = s lxor (s lsl 13) land max_int in
  let s = s lxor (s lsr 7) in
  s lxor (s lsl 17) land max_int

(* Number of instructions until the sampler fires again: the period plus a
   small seeded jitter so sampling does not phase-lock with loop bodies.
   A period of 1 always yields a stride of 1 (degenerates to exact). *)
let next_stride t (s : sampler) =
  t.sample_rng <- xorshift t.sample_rng;
  let span = max 1 (s.period / 4) in
  let jitter = (t.sample_rng mod span) - (s.period / 8) in
  max 1 (s.period + jitter)

let create ?(cost = Cost.default) ?(fuel = 1_000_000_000) ?(profile = false) ?sampler
    ~text_base ~text ~entry ~data_base ~data_words ~data_init ~input () =
  if text_base land 3 <> 0 then invalid_arg "Vm.create: unaligned text base";
  (match sampler with
  | Some s when s.period < 1 -> invalid_arg "Vm.create: sample period must be >= 1"
  | _ -> ());
  let mem = Array.make mem_words 0 in
  Array.blit text 0 mem (text_base / 4) (Array.length text);
  List.iter
    (fun (off, v) ->
      let idx = (data_base / 4) + off in
      if idx < 0 || idx >= mem_words then invalid_arg "Vm.create: data init out of range";
      mem.(idx) <- v land Word.mask)
    data_init;
  let regs = Array.make Reg.count 0 in
  regs.(Reg.sp) <- Layout.stack_top;
  let t =
    {
      mem;
      decoded = Array.make mem_words None;
      regs;
      pc = entry;
      running = true;
      exit_code = None;
      icount = 0;
      cycles = 0;
      fuel;
      cost;
      input;
      in_pos = 0;
      output = Buffer.create 4096;
      counts = (if profile then Some (Array.make (Array.length text) 0) else None);
      text_base;
      text_words = Array.length text;
      hook_lo = max_int;
      hook_hi = min_int;
      hooks = Hashtbl.create 8;
      heap_break = data_base + (4 * data_words);
      hook_invocations = 0;
      obs = None;
      sampler;
      sample_countdown = 0;
      sample_rng = 0;
      sample_hits = 0;
      sample_skips = 0;
    }
  in
  (match sampler with
  | None -> ()
  | Some s ->
    (* Seed the stride generator; xorshift has a fixed point at 0, so mix
       in a non-zero constant.  The first fire offset is itself drawn from
       the generator, keeping two same-seed runs byte-identical. *)
    t.sample_rng <- (s.seed lxor 0x2545F4914F6CDD1) land max_int;
    if t.sample_rng = 0 then t.sample_rng <- 1;
    t.sample_countdown <- next_stride t s);
  t

let of_image ?cost ?fuel ?profile ?sampler (img : Layout.image) ~input =
  create ?cost ?fuel ?profile ?sampler ~text_base:img.Layout.text_base
    ~text:img.Layout.text ~entry:img.Layout.entry_addr ~data_base:img.Layout.data_base
    ~data_words:img.Layout.data_words ~data_init:img.Layout.data_init ~input ()

let pc t = t.pc
let set_pc t a = t.pc <- a

let reg t r = if r = Reg.zero then 0 else t.regs.(r)

let set_reg t r v = if r <> Reg.zero then t.regs.(r) <- v land Word.mask

let check_word_addr t a =
  if a land 3 <> 0 then trap t (Printf.sprintf "unaligned word access at 0x%x" a);
  let idx = a lsr 2 in
  if idx < 0 || idx >= mem_words then
    trap t (Printf.sprintf "word access out of range at 0x%x" a);
  idx

let load_word t a = t.mem.(check_word_addr t a)

let store_word t a v =
  let idx = check_word_addr t a in
  t.mem.(idx) <- v land Word.mask;
  t.decoded.(idx) <- None

let check_byte_addr t a =
  if a < 0 || a >= Layout.mem_bytes then
    trap t (Printf.sprintf "byte access out of range at 0x%x" a)

let load_byte t a =
  check_byte_addr t a;
  (t.mem.(a lsr 2) lsr (8 * (a land 3))) land 0xFF

let store_byte t a v =
  check_byte_addr t a;
  let idx = a lsr 2 in
  let shift = 8 * (a land 3) in
  t.mem.(idx) <- t.mem.(idx) land lnot (0xFF lsl shift) lor ((v land 0xFF) lsl shift);
  t.decoded.(idx) <- None

let add_cycles t n = t.cycles <- t.cycles + n
let icount t = t.icount
let cycles t = t.cycles
let hook_invocations t = t.hook_invocations
let set_obs t o = t.obs <- Some o
let exited t = t.exit_code
let counts t = t.counts
let sample_hits t = t.sample_hits
let sample_skips t = t.sample_skips
let output_so_far t = Buffer.contents t.output

let install_hook t ~addr f =
  if addr land 3 <> 0 then invalid_arg "Vm.install_hook: unaligned address";
  Hashtbl.replace t.hooks addr f;
  t.hook_lo <- min t.hook_lo addr;
  t.hook_hi <- max t.hook_hi addr

(* setjmp buffer layout: [pc; sp; ra; s0..s6] = 10 words. *)
let setjmp_words = 10

let do_setjmp t buf =
  (* The layout above must cover exactly the pc, sp, ra and saved-register
     slots; if Reg.saved ever changes, this is the place that must follow. *)
  assert (setjmp_words = 3 + List.length Reg.saved);
  (* Trap on an out-of-range buffer before any partial write. *)
  ignore (check_word_addr t buf);
  ignore (check_word_addr t (buf + (4 * (setjmp_words - 1))));
  let continue_pc = t.pc + 4 in
  store_word t buf continue_pc;
  store_word t (buf + 4) (reg t Reg.sp);
  store_word t (buf + 8) (reg t Reg.ra);
  List.iteri (fun i r -> store_word t (buf + 12 + (4 * i)) (reg t r)) Reg.saved;
  set_reg t Reg.rv 0

let do_longjmp t buf v =
  let target = load_word t buf in
  set_reg t Reg.sp (load_word t (buf + 4));
  set_reg t Reg.ra (load_word t (buf + 8));
  List.iteri (fun i r -> set_reg t r (load_word t (buf + 12 + (4 * i)))) Reg.saved;
  set_reg t Reg.rv (if v = 0 then 1 else v);
  t.pc <- target

let do_syscall t code =
  let a0 = reg t 16 and a1 = reg t 17 in
  match Syscall.of_code code with
  | None -> trap t (Printf.sprintf "unknown syscall %d" code)
  | Some Syscall.Exit ->
    t.running <- false;
    t.exit_code <- Some (Word.to_signed a0 land 0xFF);
    t.pc <- t.pc + 4
  | Some Syscall.Getc ->
    let v =
      if t.in_pos < String.length t.input then begin
        let c = Char.code t.input.[t.in_pos] in
        t.in_pos <- t.in_pos + 1;
        c
      end
      else Word.of_int (-1)
    in
    set_reg t Reg.rv v;
    t.pc <- t.pc + 4
  | Some Syscall.Putc ->
    Buffer.add_char t.output (Char.chr (a0 land 0xFF));
    t.pc <- t.pc + 4
  | Some Syscall.Putint ->
    Buffer.add_string t.output (string_of_int (Word.to_signed a0));
    Buffer.add_char t.output '\n';
    t.pc <- t.pc + 4
  | Some Syscall.Sbrk ->
    let old = t.heap_break in
    let nbreak = old + Word.to_signed a0 in
    if nbreak < 0 || nbreak >= Layout.stack_top then trap t "sbrk: out of memory";
    t.heap_break <- nbreak;
    set_reg t Reg.rv old;
    t.pc <- t.pc + 4
  | Some Syscall.Setjmp ->
    do_setjmp t a0;
    t.pc <- t.pc + 4
  | Some Syscall.Longjmp -> do_longjmp t a0 (Word.to_signed a1)
  | Some Syscall.Getw ->
    if t.in_pos + 4 <= String.length t.input then begin
      let b i = Char.code t.input.[t.in_pos + i] in
      set_reg t Reg.rv (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24));
      t.in_pos <- t.in_pos + 4
    end
    else set_reg t Reg.rv (Word.of_int (-1));
    t.pc <- t.pc + 4
  | Some Syscall.Putw ->
    for i = 0 to 3 do
      Buffer.add_char t.output (Char.chr ((a0 lsr (8 * i)) land 0xFF))
    done;
    t.pc <- t.pc + 4

let eval_alu t op a b =
  match op with
  | Instr.Add -> Word.add a b
  | Instr.Sub -> Word.sub a b
  | Instr.Mul -> Word.mul a b
  | Instr.Div -> ( try Word.sdiv a b with Word.Division_trap -> trap t "division by zero")
  | Instr.Rem -> ( try Word.srem a b with Word.Division_trap -> trap t "division by zero")
  | Instr.And -> Word.logand a b
  | Instr.Or -> Word.logor a b
  | Instr.Xor -> Word.logxor a b
  | Instr.Sll -> Word.shift_left a (b land 31)
  | Instr.Srl -> Word.shift_right_logical a (b land 31)
  | Instr.Sra -> Word.shift_right_arith a (b land 31)
  | Instr.Cmpeq -> if Word.eq a b then 1 else 0
  | Instr.Cmpne -> if Word.eq a b then 0 else 1
  | Instr.Cmplt -> if Word.slt a b then 1 else 0
  | Instr.Cmple -> if Word.sle a b then 1 else 0
  | Instr.Cmpult -> if Word.ult a b then 1 else 0
  | Instr.Cmpule -> if Word.ule a b then 1 else 0

let cond_holds op v =
  let s = Word.to_signed v in
  match op with
  | Instr.Eq -> s = 0
  | Instr.Ne -> s <> 0
  | Instr.Lt -> s < 0
  | Instr.Le -> s <= 0
  | Instr.Gt -> s > 0
  | Instr.Ge -> s >= 0

let fetch t =
  if t.pc land 3 <> 0 then trap t "unaligned pc";
  let idx = t.pc lsr 2 in
  if idx < 0 || idx >= mem_words then trap t "pc out of range";
  match t.decoded.(idx) with
  | Some i -> i
  | None -> (
    match Instr.decode t.mem.(idx) with
    | Ok i ->
      t.decoded.(idx) <- Some i;
      i
    | Error msg -> trap t ("illegal instruction: " ^ msg))

let record_count t =
  match t.counts with
  | None -> ()
  | Some arr -> (
    match t.sampler with
    | None ->
      let idx = (t.pc - t.text_base) lsr 2 in
      if idx >= 0 && idx < t.text_words then arr.(idx) <- arr.(idx) + 1
    | Some s ->
      t.sample_countdown <- t.sample_countdown - 1;
      if t.sample_countdown <= 0 then begin
        t.sample_countdown <- next_stride t s;
        t.sample_hits <- t.sample_hits + 1;
        (match t.obs with None -> () | Some o -> Obs.incr o "vm.sample_hits");
        let idx = (t.pc - t.text_base) lsr 2 in
        if idx >= 0 && idx < t.text_words then arr.(idx) <- arr.(idx) + 1
      end
      else begin
        t.sample_skips <- t.sample_skips + 1;
        match t.obs with None -> () | Some o -> Obs.incr o "vm.sample_skips"
      end)

let rec step t =
  if not t.running then false
  else begin
    (if t.pc >= t.hook_lo && t.pc <= t.hook_hi then
       match Hashtbl.find_opt t.hooks t.pc with
       | Some f ->
         t.hook_invocations <- t.hook_invocations + 1;
         (match t.obs with
         | None -> ()
         | Some o -> Obs.incr o "vm.hook_invocations");
         f t
       | None -> exec_one t
     else exec_one t);
    t.running
  end

and exec_one t =
  if t.icount >= t.fuel then trap t "out of fuel";
  let ins = fetch t in
  record_count t;
  t.icount <- t.icount + 1;
  let taken = ref false in
  (match ins with
  | Instr.Nop -> t.pc <- t.pc + 4
  | Instr.Sys code ->
    do_syscall t code;
    taken := false
  | Instr.Lda { ra; rb; disp } ->
    set_reg t ra (Word.add (reg t rb) (Word.of_int disp));
    t.pc <- t.pc + 4
  | Instr.Ldah { ra; rb; disp } ->
    set_reg t ra (Word.add (reg t rb) (Word.of_int (disp lsl 16)));
    t.pc <- t.pc + 4
  | Instr.Opr { op; ra; rb; rc } ->
    let b = match rb with Instr.Reg r -> reg t r | Instr.Imm v -> v in
    set_reg t rc (eval_alu t op (reg t ra) b);
    t.pc <- t.pc + 4
  | Instr.Mem { op = Instr.Ldw; ra; rb; disp } ->
    set_reg t ra (load_word t (Word.to_signed (Word.add (reg t rb) (Word.of_int disp))));
    t.pc <- t.pc + 4
  | Instr.Mem { op = Instr.Stw; ra; rb; disp } ->
    store_word t (Word.to_signed (Word.add (reg t rb) (Word.of_int disp))) (reg t ra);
    t.pc <- t.pc + 4
  | Instr.Mem { op = Instr.Ldb; ra; rb; disp } ->
    set_reg t ra (load_byte t (Word.to_signed (Word.add (reg t rb) (Word.of_int disp))));
    t.pc <- t.pc + 4
  | Instr.Mem { op = Instr.Stb; ra; rb; disp } ->
    store_byte t (Word.to_signed (Word.add (reg t rb) (Word.of_int disp))) (reg t ra);
    t.pc <- t.pc + 4
  | Instr.Cbr { op; ra; disp } ->
    if cond_holds op (reg t ra) then begin
      taken := true;
      t.pc <- t.pc + 4 + (4 * disp)
    end
    else t.pc <- t.pc + 4
  | Instr.Br { ra; disp } | Instr.Bsr { ra; disp } ->
    taken := true;
    set_reg t ra (t.pc + 4);
    t.pc <- t.pc + 4 + (4 * disp)
  | Instr.Jmp { ra; rb; _ } | Instr.Jsr { ra; rb; _ } ->
    taken := true;
    let target = reg t rb in
    set_reg t ra (t.pc + 4);
    t.pc <- target
  | Instr.Ret { ra; rb; _ } ->
    taken := true;
    let target = reg t rb in
    set_reg t ra (t.pc + 4);
    t.pc <- target
  | Instr.Bsrx _ -> trap t "bsrx marker executed (must never reach the pipeline)"
  | Instr.Sentinel -> trap t "sentinel executed");
  t.cycles <- t.cycles + Cost.instr_cost t.cost ins ~taken:!taken

type outcome = {
  exit_code : int;
  output : string;
  icount : int;
  cycles : int;
  hook_invocations : int;
}

let run t =
  while step t do
    ()
  done;
  {
    exit_code = Option.value t.exit_code ~default:0;
    output = Buffer.contents t.output;
    icount = t.icount;
    cycles = t.cycles;
    hook_invocations = t.hook_invocations;
  }
