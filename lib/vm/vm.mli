(** The SQ32 simulator.

    The VM executes a loaded image word by word, counting dynamic
    instructions and cycles (using a {!Cost.model}).  Three features exist
    specifically for this paper's system:

    - {b self-modifying text}: stores may target the text segment (the
      squash runtime buffer lives there); a per-word decode cache is
      invalidated on writes;
    - {b hooks}: an address range can be registered so that fetching from it
      runs an OCaml intrinsic instead of decoding a word — squash mounts its
      decompressor/CreateStub runtime this way while still charging
      simulated cycles;
    - {b profiling}: optional per-text-word execution counts, from which
      {!Profile} derives basic-block frequencies; a {!sampler} degrades
      the exact counts to deterministic periodic samples. *)

type t

exception Trap of { pc : int; reason : string }

type sampler = { period : int; seed : int }
(** Statistical profiling: instead of counting every executed text word,
    count roughly one in [period] (the stride is [period] plus a small
    jitter drawn from a [seed]ed xorshift generator, so sampling does not
    phase-lock with loop bodies yet stays fully reproducible).  A period
    of 1 degenerates to exact counting. *)

(** {1 Construction} *)

val create :
  ?cost:Cost.model ->
  ?fuel:int ->
  ?profile:bool ->
  ?sampler:sampler ->
  text_base:int ->
  text:int array ->
  entry:int ->
  data_base:int ->
  data_words:int ->
  data_init:(int * Word.t) list ->
  input:string ->
  unit ->
  t
(** [fuel] bounds the number of executed instructions (default 1e9);
    exceeding it raises [Trap].  [input] is the byte stream served by the
    [getc]/[getw] syscalls.  [sampler] only matters with [~profile:true];
    @raise Invalid_argument if its period is < 1. *)

val of_image :
  ?cost:Cost.model ->
  ?fuel:int ->
  ?profile:bool ->
  ?sampler:sampler ->
  Layout.image ->
  input:string ->
  t

(** {1 Execution} *)

type outcome = {
  exit_code : int;
  output : string;
  icount : int;  (** Dynamic instructions executed (hooks not included). *)
  cycles : int;  (** Simulated cycles, including cycles charged by hooks. *)
  hook_invocations : int;
      (** Times the PC landed on a registered hook and its intrinsic ran. *)
}

val run : t -> outcome
(** Execute until the program exits.  @raise Trap on any machine trap. *)

val step : t -> bool
(** Execute one instruction (or one hook invocation); [false] once the
    program has exited. *)

(** {1 State access (used by the squash runtime and by tests)} *)

val pc : t -> int
val set_pc : t -> int -> unit
val reg : t -> Reg.t -> Word.t
val set_reg : t -> Reg.t -> Word.t -> unit
val load_word : t -> int -> Word.t
val store_word : t -> int -> Word.t -> unit
val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit
val add_cycles : t -> int -> unit
val icount : t -> int
val cycles : t -> int
val hook_invocations : t -> int
val exited : t -> int option

val set_obs : t -> Obs.t -> unit
(** Attach an observability sink.  The VM itself only bumps the
    ["vm.hook_invocations"] counter; richer events are emitted by the hook
    intrinsics (see {!Runtime}).  When unset the only per-hook overhead is
    a single branch. *)

val install_hook : t -> addr:int -> (t -> unit) -> unit
(** Register an intrinsic at a word-aligned text address.  When the PC
    reaches it the intrinsic runs instead of an instruction fetch; it must
    set the PC itself. *)

val counts : t -> int array option
(** Per-text-word execution counts when created with [~profile:true];
    index [i] counts executions of the word at [text_base + 4*i].  Under a
    {!sampler} these are sampled hit counts, not exact executions. *)

val sample_hits : t -> int
(** Instructions the sampler chose to record (0 without a sampler).  Also
    bumped on the obs sink as ["vm.sample_hits"]. *)

val sample_skips : t -> int
(** Instructions the sampler skipped (0 without a sampler; with one,
    [sample_hits + sample_skips] equals the profiled instruction count).
    Also bumped on the obs sink as ["vm.sample_skips"]. *)

val output_so_far : t -> string
