(** The coder abstraction: the contract every compression backend satisfies.

    A {e coder} turns the instruction sequences of all compressible regions
    into one blob plus per-region offsets, and decodes any single region back,
    reporting the work done.  {!Compress} holds a pure-data model value for
    the selected backend and dispatches through first-class modules built by
    {!Compress.pack}; keeping the model first-order (no closures, no packed
    modules) is what lets squash results travel through [Marshal] into the
    experiment cache.

    Every backend is sentinel-terminated: [build]/[encode_regions] append an
    encoded {!Instr.Sentinel} to each region, and [decode_region] consumes it
    and stops there (paper, Section 2.1). *)

type work = {
  bits : int;  (** Bits consumed from the blob (DECODE-loop iterations). *)
  steps : int;
      (** Model steps beyond bit consumption: move-to-front list walks,
          context-table selections, LZSS copy steps.  The runtime charges
          them at {!Cost.model.decomp_per_step} cycles each. *)
}

module type S = sig
  type model
  (** Pure data: marshal-safe, no closures or packed modules. *)

  val name : string
  (** Stable lower-case backend name ("huffman", "mtf", "lzss",
      "context"). *)

  val build : Instr.t list array -> model
  (** Build the model from all region instruction sequences at once
      (sentinels are added internally). *)

  val encode_regions : model -> Instr.t list array -> string * int array
  (** [(blob, offsets)]: the compressed bytes and each region's starting
      bit offset. *)

  val decode_region :
    model -> string -> bit_offset:int -> bit_end:int -> Instr.t list * work
  (** Decode one region (the sentinel is consumed but not returned).
      [bit_end] bounds the region's bits — required information for LZSS;
      the Huffman-family backends stop at the sentinel.
      @raise Failure on a corrupt stream. *)

  val table_bits : model -> int
  (** Footprint of the code representations that must ship with the
      blob. *)

  val stream_stats : model -> (string * int * float) list
  (** Per stream: name, distinct symbols, max codeword length. *)

  val stream_bits : model -> Instr.t list array -> (string * int) list
  (** Encoded bits contributed by each stream over the given regions
      (excluding tables); the per-stream breakdown of [squashc squash
      --stream-bits] and the coder-ablation experiment. *)
end

(** {1 Shared helpers}

    The stream-view plumbing every split-stream backend uses. *)

val stream_count : int

val stream_value_bits : Instr.stream -> int
(** Field width of a stream's raw values, for storing code-table [D]
    entries. *)

val with_sentinel : Instr.t list -> Instr.t list

val iter_fields : (Instr.stream -> int -> unit) -> Instr.t -> unit
(** Visit every (stream, value) of an instruction, opcode first. *)

val stream_values : Instr.t list array -> int list array
(** Per stream (indexed by {!Instr.stream_index}): every value of all
    regions, in encoding order. *)

val freqs_of_values : int list -> (int * int) list
(** Sorted (value, count) pairs. *)

val region_bytes : Instr.t list -> string
(** The region's instruction words (sentinel included) as little-endian
    bytes — the byte-oriented backends' input. *)

(** Move-to-front state: one recency array per stream. *)
module Mtf_state : sig
  type t

  val create : int array array -> t
  (** One recency array per stream; [[||]] where the stream is absent. *)

  val reset : t -> int array array -> unit
  (** Restore the initial alphabets (region boundary). *)

  val rank_of : t -> int -> int -> int
  (** [rank_of t si v]: rank of [v] in stream [si], then move it to the
      front.  @raise Failure if [v] is not in the alphabet. *)

  val value_at : t -> int -> int -> int
  (** [value_at t si rank]: value at [rank] in stream [si], then move it to
      the front.  @raise Failure if the rank is out of range. *)
end
