type options = {
  theta : float;
  k_bytes : int;
  gamma : float;
  pack : bool;
  use_buffer_safe : bool;
  sharp_buffer_safe : bool;
  unswitch : bool;
  decomp_words : int;
  max_stubs : int;
  coder : Compress.backend;
  regions_strategy : Regions.strategy;
}

let default_options =
  {
    theta = 0.0;
    k_bytes = 512;
    gamma = 0.66;
    pack = true;
    use_buffer_safe = true;
    sharp_buffer_safe = false;
    unswitch = true;
    decomp_words = Rewrite.default_decomp_words;
    max_stubs = Rewrite.default_max_stubs;
    coder = `Split_stream;
    regions_strategy = `Dfs;
  }

type state = {
  prog : Prog.t;
  profile : Profile.t;
  options : options;
  seed_excluded : string list;
  original_words : int;
  cold : Cold.t option;
  resolved_jumps : (string * int) list;
  unswitched : (string * int) list;
  unmatched : string list;
  excluded : string list option;
  regions : Regions.t option;
  buffer_safe : Buffer_safe.t option;
  squashed : Rewrite.t option;
}

let init ?(options = default_options) ?(setjmp_callers = []) prog profile =
  {
    prog;
    profile;
    options;
    seed_excluded = setjmp_callers;
    original_words = Prog.text_words prog;
    cold = None;
    resolved_jumps = [];
    unswitched = [];
    unmatched = [];
    excluded = None;
    regions = None;
    buffer_safe = None;
    squashed = None;
  }

type t = {
  name : string;
  descr : string;
  paper : string;
  requires : string list;
  after : string list;
  transform : state -> state;
  note : state -> string;
}

type stats = {
  pass_name : string;
  elapsed_s : float;
  instrs_before : int;
  instrs_after : int;
  words_before : int;
  words_after : int;
  alloc_words : int;
  major_collections : int;
  note : string;
}

let footprint st =
  match st.squashed with
  | Some sq -> Rewrite.total_words sq
  | None -> Prog.text_words st.prog

let missing who what pass =
  invalid_arg
    (Printf.sprintf "%s: %s missing (run the %S pass first)" who what pass)

let get_cold ~who st =
  match st.cold with Some c -> c | None -> missing who "cold analysis" "cold"

let get_regions ~who st =
  match st.regions with Some r -> r | None -> missing who "regions" "regions"

let get_buffer_safe ~who st =
  match st.buffer_safe with
  | Some b -> b
  | None -> missing who "buffer-safe analysis" "buffer-safe"

let get_excluded ~who st =
  match st.excluded with
  | Some l -> l
  | None -> missing who "exclusion set" "exclude"

let get_squashed ~who st =
  match st.squashed with
  | Some sq -> sq
  | None -> missing who "squashed image" "rewrite"
