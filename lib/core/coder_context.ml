(* Order-1 context-modeled split-stream coding.

   The paper's coder treats each of the 15 field streams as an i.i.d.
   symbol source.  Machine code is far more predictable than that: the
   opcode of an instruction is strongly conditioned on the previous
   opcode, and an instruction's operand distributions depend on which
   opcode carries them.  This backend exploits both while keeping the
   baseline's decode contract — every symbol is still one canonical-
   Huffman codeword, every region is still sentinel-terminated and
   independently decodable:

   - the [Opcode] stream is conditioned on the previous opcode of the
     region (the region-start context is the sentinel's opcode, making
     regions behave as sentinel-separated runs);
   - every other stream is conditioned on the current opcode, which the
     decoder always knows before it reads the field;
   - each register stream may additionally be move-to-front transformed
     over per-region recency lists seeded with the fixed identity
     alphabet, so no alphabets ship.  The transform is chosen per stream
     at build time, and only where the measured bits (payload + tables)
     actually drop — register reuse locality sometimes beats the skewed
     static distribution, but usually does not (EXPERIMENTS.md's MTF
     ablation), so the flag is earned, never assumed.

   Conditioning splits one code into up to 64 per-context codes, and
   every dedicated code ships its own N/D table.  A context gets a
   dedicated code only when the bits it saves exceed the table it costs
   (measured against a code over the stream's whole distribution); the
   remaining contexts share one default code rebuilt over exactly the
   residual symbols.  With no dedicated contexts a stream degenerates to
   the baseline's single code, so the scheme can lose at most its flat
   accounting overhead (a 6-bit dedicated count and a 1-bit MTF flag per
   stream) — and wins wherever a context pays for its table. *)

type ccode = {
  default : Canonical.t option;  (* residual contexts; None if all dedicated *)
  dedicated : (int * Canonical.t) array;  (* (context id, code), sorted *)
}

type model = {
  per_stream : ccode option array;
  mtf : bool array;  (* per stream: symbols are MTF ranks, not raw values *)
}

let ctx_id_bits = 6
let sentinel_op = Instr.opcode_value Instr.Sentinel

let stream_of_index =
  let a = Array.make Coder.stream_count Instr.Opcode in
  List.iter (fun s -> a.(Instr.stream_index s) <- s) Instr.all_streams;
  a

let is_reg_stream s = Coder.stream_value_bits s = 5

(* Per-region recency lists over the full register file; identical on the
   encode and decode sides by construction, so nothing ships. *)
let identity_alphabets =
  Array.map
    (fun s -> if is_reg_stream s then Array.init Reg.count Fun.id else [||])
    stream_of_index

(* Walk regions exactly as the encoder does, handing every symbol to [f] as
   [f stream_index context symbol].  Streams flagged in [mtf] arrive as
   recency ranks; the others as raw values. *)
let iter_symbols ~mtf f regions =
  let state = Coder.Mtf_state.create identity_alphabets in
  Array.iter
    (fun instrs ->
      Coder.Mtf_state.reset state identity_alphabets;
      let prev = ref sentinel_op in
      List.iter
        (fun ins ->
          let op = Instr.opcode_value ins in
          f (Instr.stream_index Instr.Opcode) !prev op;
          List.iter
            (fun (s, v) ->
              let si = Instr.stream_index s in
              let sym = if mtf.(si) then Coder.Mtf_state.rank_of state si v else v in
              f si op sym)
            (Instr.fields ins);
          prev := op)
        (Coder.with_sentinel instrs))
    regions

let bits_under code syms =
  List.fold_left
    (fun acc s ->
      match Canonical.codeword code s with
      | Some (_, len) -> acc + len
      | None -> failwith "Coder_context: symbol outside alphabet")
    0 syms

(* Gather (context -> symbols) per stream under the given MTF flags. *)
let gather ~mtf regions =
  let by_ctx = Array.init Coder.stream_count (fun _ -> Hashtbl.create 16) in
  iter_symbols ~mtf
    (fun si ctx sym ->
      let tbl = by_ctx.(si) in
      Hashtbl.replace tbl ctx
        (sym :: Option.value ~default:[] (Hashtbl.find_opt tbl ctx)))
    regions;
  by_ctx

(* Build one stream's conditional code over its (context -> symbols) table:
   dedicate a code to a context only when the dedicated bits plus its table
   undercut the shared code's bits on that context's symbols. *)
let build_ccode ~value_bits tbl =
  let contexts =
    Hashtbl.fold (fun ctx syms acc -> (ctx, syms) :: acc) tbl []
    |> List.sort compare
  in
  let all = List.concat_map snd contexts in
  let global = Canonical.of_freqs (Coder.freqs_of_values all) in
  let dedicated, residual =
    List.fold_left
      (fun (ded, res) (ctx, syms) ->
        let base = bits_under global syms in
        let cand = Canonical.of_freqs (Coder.freqs_of_values syms) in
        let cost =
          bits_under cand syms
          + Canonical.table_bits ~value_bits cand
          + ctx_id_bits
        in
        if cost < base then ((ctx, cand) :: ded, res)
        else (ded, List.rev_append syms res))
      ([], []) contexts
  in
  let default =
    match residual with
    | [] -> None
    | _ :: _ -> Some (Canonical.of_freqs (Coder.freqs_of_values residual))
  in
  { default; dedicated = Array.of_list (List.rev dedicated) }

let ccode_table_bits ~value_bits cc =
  ctx_id_bits  (* dedicated-code count *)
  + (match cc.default with
    | None -> 0
    | Some c -> Canonical.table_bits ~value_bits c)
  + Array.fold_left
      (fun acc (_, c) -> acc + ctx_id_bits + Canonical.table_bits ~value_bits c)
      0 cc.dedicated

let find_dedicated cc ctx =
  let n = Array.length cc.dedicated in
  let rec go i =
    if i >= n then None
    else
      let c, code = cc.dedicated.(i) in
      if c = ctx then Some code else go (i + 1)
  in
  go 0

let ccode_for_ctx cc ~stream ctx =
  match find_dedicated cc ctx with
  | Some code -> (code, true)
  | None -> (
    match cc.default with
    | Some code -> (code, false)
    | None ->
      failwith
        (Printf.sprintf "Coder_context: no code for context %d of stream %s" ctx
           (Instr.stream_name stream)))

(* Payload + tables for one stream, used to choose between the raw and the
   MTF-transformed variant of a register stream. *)
let ccode_cost ~value_bits cc tbl =
  let payload =
    Hashtbl.fold
      (fun ctx syms acc ->
        let code, _ = ccode_for_ctx cc ~stream:Instr.Opcode ctx in
        acc + bits_under code syms)
      tbl 0
  in
  payload + ccode_table_bits ~value_bits cc

module M = struct
  type nonrec model = model

  let name = "context"

  let build regions =
    let raw = gather ~mtf:(Array.make Coder.stream_count false) regions in
    let ranked =
      gather ~mtf:(Array.map is_reg_stream stream_of_index) regions
    in
    let mtf = Array.make Coder.stream_count false in
    let per_stream =
      Array.init Coder.stream_count (fun si ->
          if Hashtbl.length raw.(si) = 0 then None
          else begin
            let value_bits = Coder.stream_value_bits stream_of_index.(si) in
            let cc_raw = build_ccode ~value_bits raw.(si) in
            if not (is_reg_stream stream_of_index.(si)) then Some cc_raw
            else begin
              let cc_mtf = build_ccode ~value_bits ranked.(si) in
              if
                ccode_cost ~value_bits cc_mtf ranked.(si)
                < ccode_cost ~value_bits cc_raw raw.(si)
              then begin
                mtf.(si) <- true;
                Some cc_mtf
              end
              else Some cc_raw
            end
          end)
    in
    { per_stream; mtf }

  let code_for { per_stream; _ } si ctx =
    match per_stream.(si) with
    | None ->
      failwith
        ("Coder_context: no codes for stream "
        ^ Instr.stream_name stream_of_index.(si))
    | Some cc -> ccode_for_ctx cc ~stream:stream_of_index.(si) ctx

  let encode_regions model regions =
    let w = Bitio.Writer.create () in
    let offsets = Array.make (Array.length regions) 0 in
    Array.iteri
      (fun i instrs ->
        offsets.(i) <- Bitio.Writer.length_bits w;
        iter_symbols ~mtf:model.mtf
          (fun si ctx sym ->
            let code, _ = code_for model si ctx in
            Canonical.encode code w sym)
          [| instrs |])
      regions;
    (Bitio.Writer.contents w, offsets)

  let decode_region model blob ~bit_offset ~bit_end:_ =
    let r = Bitio.Reader.of_string ~start_bit:bit_offset blob in
    let bits = ref 0 and steps = ref 0 in
    let state = Coder.Mtf_state.create identity_alphabets in
    let read stream ctx =
      let si = Instr.stream_index stream in
      let code, is_dedicated = code_for model si ctx in
      let sym, b, probes = Canonical.decode code r in
      bits := !bits + b;
      (* Decode-table probes, plus one step to select a context-dedicated
         table; walking a recency list costs rank steps. *)
      steps := !steps + probes;
      if is_dedicated then incr steps;
      if model.mtf.(si) then begin
        steps := !steps + sym;
        Coder.Mtf_state.value_at state si sym
      end
      else sym
    in
    let rec go prev acc =
      let op = read Instr.Opcode prev in
      match Instr.rebuild ~opcode:op (fun s -> read s op) with
      | Error msg -> raise (Bitio.Corrupt_stream ("Coder_context.decode_region: " ^ msg))
      | Ok Instr.Sentinel -> List.rev acc
      | Ok ins -> go op (ins :: acc)
    in
    let instrs = go sentinel_op [] in
    (instrs, { Coder.bits = !bits; steps = !steps })

  let table_bits { per_stream; _ } =
    Array.to_list per_stream
    |> List.mapi (fun si cc ->
           match cc with
           | None -> 0
           | Some cc ->
             let value_bits = Coder.stream_value_bits stream_of_index.(si) in
             (* +1: the shipped MTF flag of a register stream. *)
             (if is_reg_stream stream_of_index.(si) then 1 else 0)
             + ccode_table_bits ~value_bits cc)
    |> List.fold_left ( + ) 0

  let stream_stats { per_stream; _ } =
    List.filter_map
      (fun stream ->
        match per_stream.(Instr.stream_index stream) with
        | None -> None
        | Some cc ->
          let codes =
            (match cc.default with None -> [] | Some c -> [ c ])
            @ Array.to_list (Array.map snd cc.dedicated)
          in
          let symbols =
            List.fold_left (fun a c -> a + Canonical.symbol_count c) 0 codes
          in
          let max_len =
            List.fold_left (fun a c -> max a (Canonical.max_length c)) 0 codes
          in
          Some (Instr.stream_name stream, symbols, float_of_int max_len))
      Instr.all_streams

  let stream_bits model regions =
    let totals = Array.make Coder.stream_count 0 in
    iter_symbols ~mtf:model.mtf
      (fun si ctx sym ->
        let code, _ = code_for model si ctx in
        match Canonical.codeword code sym with
        | Some (_, len) -> totals.(si) <- totals.(si) + len
        | None -> failwith "Coder_context: symbol outside alphabet")
      regions;
    List.filter_map
      (fun stream ->
        let b = totals.(Instr.stream_index stream) in
        if b = 0 then None else Some (Instr.stream_name stream, b))
      Instr.all_streams
end
