(** Construction of the squashed executable image (paper, Section 2).

    Memory map of a squashed program (byte addresses):

    {v
    0x01_0000  never-compressed code, entry stubs, retained jump
               tables, then the decompressor's code area (whose entry
               points the VM hooks; its words are sentinels so that a
               stray jump into it traps)
    0x20_0000  function offset table (one word per region), then the
               compressed code as raw words
    0x30_0000  restore-stub area (max_stubs slots of 4 words)
    0x31_0000  runtime buffer
    0x40_0000  data segment (unchanged)
    v}

    Entry stubs are emitted {e in place} — at the position their block
    would have occupied — so fallthrough edges and call-return paths from
    never-compressed code land on the right stub with no extra jumps.  A
    2-word stub uses a register that the liveness analysis proves dead at
    the block entry; when none exists the 3-word push form is used
    (paper, Section 2.3). *)

type image_word =
  | Plain of Instr.t  (** 1 word in the stream, 1 in the buffer. *)
  | Expand_call of { ra : Reg.t; br_disp : int }
      (** Stored as [Bsrx] (1 word); materialised as
          [bsr ra, CreateStub ; br +br_disp] (2 words). *)
  | Expand_calli of { ra : Reg.t; rb : Reg.t }
      (** Stored as [Jsr ~hint:1]; materialised as
          [bsr ra, CreateStub ; jmp (rb)]. *)

type region_image = {
  rid : int;
  words : image_word list;
  buffer_words : int;  (** Total buffer words needed (expansions counted). *)
  stream : Instr.t list;  (** The marker form fed to the compressor. *)
  block_offset : (string * int, int) Hashtbl.t;
}

type t = {
  prog : Prog.t;  (** The (unswitched) program the image was built from. *)
  text : Easm.image;
  images : region_image array;
  blob : string;  (** Compressed bitstream bytes. *)
  blob_offsets : int array;  (** Bit offset of each region. *)
  codes : Compress.codes;
  regions : Regions.t;
  (* Fixed addresses: *)
  blob_base : int;
  stub_base : int;
  max_stubs : int;
  buffer_base : int;
  buffer_words : int;  (** Allocated buffer size (max region + 2). *)
  decomp_base : int;
  decomp_words : int;
  entry_addr : int;
  (* Stub accounting: *)
  entry_stub_words : int;  (** Total words spent on entry stubs. *)
  push_form_stubs : int;  (** Entry stubs that had to use the 3-word form. *)
  stub_addrs : ((string * int) * int) list;
      (** Address of each entry point's stub, keyed by (function, block). *)
  func_entry_addrs : (string * int) list;
      (** Address of each function's block-0 label — real code or an entry
          stub.  Functions whose block 0 was removed as a region interior
          (possible only for uncalled functions) are omitted.  This is the
          reverse map {!Verify} uses to name the callee of a plain [bsr]
          the rewrite left in compressed code. *)
  block_addrs : ((string * int) * int) list;
      (** Text address of every {e bound} block label — hot blocks and
          region entry stubs.  Region interiors have no address (their
          code exists only in the compressed stream), so they are absent.
          This is the address oracle the equivalence prover ({!Prove})
          resolves external branch and call targets against. *)
  table_addrs : ((string * int) * int) list;
      (** Text address of each retained jump table, keyed by
          [(function, table id)]. *)
}

val decomp_entry : t -> Reg.t -> int
(** Address of the decompressor entry point for return-address register
    [r]. *)

val decomp_entry_push : t -> int
val create_stub_entry : t -> Reg.t -> int

val blob_base : int
val stub_base : int
val buffer_base : int
val default_decomp_words : int
val default_max_stubs : int

val build :
  Prog.t ->
  regions:Regions.t ->
  buffer_safe:Buffer_safe.t ->
  ?decomp_words:int ->
  ?max_stubs:int ->
  ?coder:Compress.backend ->
  unit ->
  t

val blob_words : t -> int
val offset_table_words : t -> int
val code_table_words : t -> int
val never_compressed_words : t -> int
(** Includes entry stubs, retained tables and the decompressor area. *)

val total_words : t -> int
(** The full squashed footprint in words: never-compressed part, offset
    table, compressed code, code tables, stub area, runtime buffer. *)
