(** Per-region translation validation of a squashed image
    ([squashc prove]).

    For every compressed region, every cache slot the runtime may
    materialise it into, and every block of the region, the prover:

    + decodes the region's slice of the blob with the image's actual
      coder ({!Compress.decode_region});
    + materialises the decoded stream for the slot exactly as the
      runtime decompressor would — marker expansion through CreateStub,
      slot-relative displacement rebiasing, instruction re-encoding (a
      rebias that overflows its field is caught here, statically);
    + symbolically executes the original IR block and its materialised
      counterpart over the {!Equiv} word-level domain, and
    + proves that registers, observable effects (stores and system
      calls) and the typed exit match: branch targets resolve to the
      same block (through the buffer for intra-region edges, through
      {!Rewrite.block_addrs} for external ones), calls name the same
      callee with the continuation landing on [return_to]'s first word,
      and expanded calls follow the CreateStub protocol shape.

    Entry stubs are validated against the same obligations as
    {!Verify.Bad_stub}/{!Verify.Live_stub_reg}, with the dead-register
    fact re-derived from the independent {!Dataflow.Liveness} solver.

    What is {e assumed} rather than proved (each occurrence is counted
    in [conservative]; see DESIGN.md §6c): the runtime hook contracts
    (decompressor entry and CreateStub restore-stub protocol), the
    correspondence of retained jump-table dispatch (the loaded table
    {e addresses} are proved equivalent; the entries themselves are
    covered by {!Verify}'s dangling-transfer check), and indirect-call
    target sets (the target {e values} are proved equivalent). *)

type fault =
  | Rebias_delta of int
      (** Test-only fault injection: skew the external-target rebias
          delta by this many words for every slot above 0, modelling a
          decompressor that re-aims external displacements wrongly.  The
          prover must then fail on any region with an external transfer
          proved at slot 1 or higher. *)

type failure = {
  rid : int;
  slot : int;  (** Cache slot index the proof was attempted for. *)
  site : string;  (** ["func.b3"] or ["region 2"] for region-level failures. *)
  reason : string;  (** Human-readable divergence trace (multi-line). *)
}

type report = {
  regions : int;
  slots : int;  (** Cache-slot count the image was proved for. *)
  blocks : int;  (** Region blocks examined (once per slot). *)
  proved : int;  (** Block proofs discharged. *)
  stubs : int;  (** Entry-stub obligation sets discharged. *)
  conservative : int;  (** Assumption applications (see above). *)
  failures : failure list;
}

val run : ?slots:int -> ?fault:fault -> Rewrite.t -> report
(** Prove every region of the image for cache slots [0 .. slots-1]
    (default 1).  Self-contained: decodes from the blob, re-derives
    liveness, and resolves addresses through the image's own maps. *)

val failure_message : failure -> string
(** One-line summary (the full [reason] is multi-line). *)

val render : report -> string
(** Failures with their divergence traces, or a one-line success
    summary. *)

val to_diags : report -> Verify.diag list
(** Each failure as an [Error]-severity {!Verify.Unproved_region}
    diagnostic, feeding the prover into the verifier's typed stream. *)

val report_json : report -> Report.Json.t
