type work = { bits : int; steps : int }

module type S = sig
  type model

  val name : string
  val build : Instr.t list array -> model
  val encode_regions : model -> Instr.t list array -> string * int array

  val decode_region :
    model -> string -> bit_offset:int -> bit_end:int -> Instr.t list * work

  val table_bits : model -> int
  val stream_stats : model -> (string * int * float) list
  val stream_bits : model -> Instr.t list array -> (string * int) list
end

let stream_count = List.length Instr.all_streams

(* Field width of each stream, for storing D entries. *)
let stream_value_bits = function
  | Instr.Opcode -> 6
  | Instr.Mem_ra | Instr.Mem_rb | Instr.Br_ra | Instr.Op_ra | Instr.Op_rb
  | Instr.Op_rc | Instr.Jmp_ra | Instr.Jmp_rb ->
    5
  | Instr.Mem_disp | Instr.Jmp_hint | Instr.Sys_func -> 16
  | Instr.Br_disp -> 21
  | Instr.Op_lit -> 8
  | Instr.Op_func -> 7

let with_sentinel instrs = instrs @ [ Instr.Sentinel ]

(* Visit every (stream, value) of an instruction, opcode first. *)
let iter_fields f ins =
  f Instr.Opcode (Instr.opcode_value ins);
  List.iter (fun (s, v) -> f s v) (Instr.fields ins)

let stream_values regions =
  let values = Array.make stream_count [] in
  Array.iter
    (fun instrs ->
      List.iter
        (iter_fields (fun s v ->
             let i = Instr.stream_index s in
             values.(i) <- v :: values.(i)))
        (with_sentinel instrs))
    regions;
  Array.map List.rev values

let freqs_of_values vs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    vs;
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [] |> List.sort compare

let region_bytes instrs =
  let b = Buffer.create 256 in
  List.iter
    (fun ins ->
      let w = Instr.encode ins in
      Buffer.add_char b (Char.chr (w land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 8) land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 16) land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 24) land 0xFF)))
    (with_sentinel instrs);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Move-to-front state: one recency array per stream. *)

module Mtf_state = struct
  type t = int array array  (* per stream; [||] when the stream is absent *)

  let create (alphabets : int array array) : t = Array.map Array.copy alphabets

  let reset t (alphabets : int array array) =
    Array.iteri (fun i a -> Array.blit a 0 t.(i) 0 (Array.length a)) alphabets

  (* Rank of [v] in stream [si], then move it to the front. *)
  let rank_of t si v =
    let a = t.(si) in
    let n = Array.length a in
    let rec find i = if i >= n then -1 else if a.(i) = v then i else find (i + 1) in
    let r = find 0 in
    if r < 0 then failwith "Coder: MTF symbol not in alphabet";
    for j = r downto 1 do
      a.(j) <- a.(j - 1)
    done;
    a.(0) <- v;
    r

  (* Value at [rank] in stream [si], then move it to the front. *)
  let value_at t si rank =
    let a = t.(si) in
    if rank < 0 || rank >= Array.length a then
      failwith "Coder: MTF rank out of range";
    let v = a.(rank) in
    for j = rank downto 1 do
      a.(j) <- a.(j - 1)
    done;
    a.(0) <- v;
    v
end
