type image_word =
  | Plain of Instr.t
  | Expand_call of { ra : Reg.t; br_disp : int }
  | Expand_calli of { ra : Reg.t; rb : Reg.t }

type region_image = {
  rid : int;
  words : image_word list;
  buffer_words : int;
  stream : Instr.t list;
  block_offset : (string * int, int) Hashtbl.t;
}

type t = {
  prog : Prog.t;
  text : Easm.image;
  images : region_image array;
  blob : string;
  blob_offsets : int array;
  codes : Compress.codes;
  regions : Regions.t;
  blob_base : int;
  stub_base : int;
  max_stubs : int;
  buffer_base : int;
  buffer_words : int;
  decomp_base : int;
  decomp_words : int;
  entry_addr : int;
  entry_stub_words : int;
  push_form_stubs : int;
  stub_addrs : ((string * int) * int) list;
      (* entry-point block -> address of its entry stub *)
  func_entry_addrs : (string * int) list;
      (* function -> address of its block-0 label (code or entry stub);
         omits functions whose block 0 was removed as a region interior *)
  block_addrs : ((string * int) * int) list;
      (* every bound block label -> its text address: hot blocks and
         region entry stubs (region interiors have no address) *)
  table_addrs : ((string * int) * int) list;
      (* (function, table id) -> address of the retained jump table *)
}

let blob_base = 0x20_0000
let stub_base = 0x30_0000
let buffer_base = 0x31_0000
let default_decomp_words = 256
let default_max_stubs = 32

let decomp_entry t r = t.decomp_base + (4 * r)
let decomp_entry_push t = t.decomp_base + (4 * Reg.count)
let create_stub_entry t r = t.decomp_base + (4 * (Reg.count + 1)) + (4 * r)

(* ------------------------------------------------------------------ *)
(* Per-block buffer plan. *)

type bop =
  | BInstr of Instr.t
  | BLoad_func of Reg.t * string
  | BLoad_table of Reg.t * (string * int)  (* function, table id *)
  | BBr of Reg.t * [ `Intra of string * int | `Ext of string * int ]
  | BCbr of Instr.cond * Reg.t * [ `Intra of string * int | `Ext of string * int ]
  | BCall_direct of Reg.t * [ `Intra of string | `Addr of string ]
      (** [`Intra g]: callee entry in this region; [`Addr g]: buffer-safe
          callee at its never-compressed address. *)
  | BCall_expand of Reg.t * string
  | BCalli_expand of Reg.t * Reg.t
  | BJmp of Reg.t
  | BRet of Reg.t

let bop_words = function
  | BInstr _ | BBr _ | BCbr _ | BCall_direct _ | BJmp _ | BRet _ -> 1
  | BLoad_func _ | BLoad_table _ -> 2
  | BCall_expand _ | BCalli_expand _ -> 2

let dest_kind ~fname ~region_of ~rid d =
  if Hashtbl.find_opt region_of (fname, d) = Some rid then `Intra (fname, d)
  else `Ext (fname, d)

(* The buffer plan of one region block.  [next] is the block laid out next
   in the region image (if any), which absorbs fallthrough edges.

   A direct call may skip the CreateStub protocol in exactly two cases:
   - the callee is buffer-safe (it can never invoke the decompressor), or
   - the callee's {e entire} body lives in this same region ([fully_in]).
     Entry alone is not enough: a callee that spans this region and other
     code could branch through another region's entry stub, overwrite the
     runtime buffer, and later return to a raw (now stale) buffer address.
     When every callee block is in this region, any decompression the
     callee triggers goes through a restore stub that re-materialises this
     region before control comes back. *)
let plan_block ~region_of ~rid ~buffer_safe ~fully_in (fname, _i) (b : Prog.Block.t)
    ~next =
  let item_ops =
    List.map
      (function
        | Prog.Instr ins -> BInstr ins
        | Prog.Load_addr (r, Prog.Func_addr g) -> BLoad_func (r, g)
        | Prog.Load_addr (r, Prog.Table_addr tid) -> BLoad_table (r, (fname, tid)))
      b.items
  in
  let dest = dest_kind ~fname ~region_of ~rid in
  let goto d =
    if next = Some (fname, d) then [] else [ BBr (Reg.zero, dest d) ]
  in
  let term_ops =
    match b.term with
    | Prog.Fallthrough d | Prog.Jump d -> goto d
    | Prog.Branch (c, r, taken, fall) -> BCbr (c, r, dest taken) :: goto fall
    | Prog.Call { ra; callee; return_to = _ } ->
      if fully_in callee = Some rid then [ BCall_direct (ra, `Intra callee) ]
      else if Buffer_safe.is_safe buffer_safe callee then
        [ BCall_direct (ra, `Addr callee) ]
      else [ BCall_expand (ra, callee) ]
    | Prog.Call_indirect { ra; rb; return_to = _ } -> [ BCalli_expand (ra, rb) ]
    | Prog.Jump_indirect { rb; table = _ } -> [ BJmp rb ]
    | Prog.Return { rb } -> [ BRet rb ]
    | Prog.No_return -> []
  in
  item_ops @ term_ops

(* Layout a region: buffer offsets of blocks, total size, per-block plans. *)
let layout_region ~region_of ~buffer_safe ~fully_in (r : Regions.region) plans_of =
  let block_offset = Hashtbl.create 16 in
  let blocks = Array.of_list r.Regions.blocks in
  let n = Array.length blocks in
  let offset = ref 0 in
  let plans =
    List.init n (fun idx ->
        let ((fname, i) as key) = blocks.(idx) in
        let next = if idx + 1 < n then Some blocks.(idx + 1) else None in
        let b = plans_of fname i in
        let ops =
          plan_block ~region_of ~rid:r.Regions.id ~buffer_safe ~fully_in (fname, i) b
            ~next
        in
        Hashtbl.replace block_offset key !offset;
        offset := !offset + List.fold_left (fun acc op -> acc + bop_words op) 0 ops;
        ops)
  in
  (block_offset, !offset, List.concat plans)

(* ------------------------------------------------------------------ *)

let build (p : Prog.t) ~regions ~buffer_safe ?(decomp_words = default_decomp_words)
    ?(max_stubs = default_max_stubs) ?(coder = `Split_stream) () =
  let func_of = Hashtbl.create 64 in
  List.iter (fun (f : Prog.Func.t) -> Hashtbl.replace func_of f.name f) p.funcs;
  let block_of fname i = (Hashtbl.find func_of fname).Prog.Func.blocks.(i) in
  let region_of = regions.Regions.region_of in
  (* Which functions live entirely inside one region. *)
  let fully_in_tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Prog.Func.t) ->
      let rid0 = Hashtbl.find_opt region_of (f.name, 0) in
      let all_same =
        match rid0 with
        | None -> false
        | Some _ ->
          let ok = ref true in
          Array.iteri
            (fun i _ ->
              if Hashtbl.find_opt region_of (f.name, i) <> rid0 then ok := false)
            f.blocks;
          !ok
      in
      if all_same then
        match rid0 with
        | Some rid -> Hashtbl.replace fully_in_tbl f.name rid
        | None -> ())
    p.funcs;
  let fully_in name = Hashtbl.find_opt fully_in_tbl name in
  (* Phase 1: region layouts (address-independent). *)
  let layouts =
    Array.map
      (fun r -> layout_region ~region_of ~buffer_safe ~fully_in r block_of)
      regions.Regions.regions
  in
  (* Phase 2: emit the never-compressed text. *)
  let asm = Easm.create ~base:Layout.text_base in
  let block_labels = Hashtbl.create 256 in
  let table_labels = Hashtbl.create 16 in
  let entry_stub_words = ref 0 in
  let push_form_stubs = ref 0 in
  List.iter
    (fun (f : Prog.Func.t) ->
      Array.iteri
        (fun i _ ->
          let kind =
            match Hashtbl.find_opt region_of (f.name, i) with
            | None -> "blk"
            | Some _ -> "stub"
          in
          Hashtbl.replace block_labels (f.name, i)
            (Easm.fresh_label asm (Printf.sprintf "%s.%s%d" f.name kind i)))
        f.blocks;
      Array.iteri
        (fun tid _ ->
          Hashtbl.replace table_labels (f.name, tid)
            (Easm.fresh_label asm (Printf.sprintf "%s.table%d" f.name tid)))
        f.tables)
    p.funcs;
  let decomp_entry_labels =
    Array.init Reg.count (fun r -> Easm.fresh_label asm (Printf.sprintf "decomp.r%d" r))
  in
  let decomp_push_label = Easm.fresh_label asm "decomp.push" in
  let cs_labels =
    Array.init Reg.count (fun r -> Easm.fresh_label asm (Printf.sprintf "cstub.r%d" r))
  in
  let label_of key = Hashtbl.find block_labels key in
  (* Emit each function: hot blocks as code, region entry blocks as inline
     stubs, other region blocks as nothing. *)
  List.iter
    (fun (f : Prog.Func.t) ->
      let lv = lazy (Cfg.liveness f) in
      let n = Array.length f.blocks in
      Array.iteri
        (fun i (b : Prog.Block.t) ->
          Easm.set_owner asm (Some (f.name, i));
          match Hashtbl.find_opt region_of (f.name, i) with
          | Some rid ->
            if Regions.is_entry regions f.name i then begin
              Easm.bind asm (label_of (f.name, i));
              let block_offset, _, _ = layouts.(rid) in
              let off = Hashtbl.find block_offset (f.name, i) in
              if rid > 0xFFFF || off > 0xFFFF then
                failwith "Rewrite.build: tag field overflow";
              let tag = (rid lsl 16) lor off in
              match Cfg.free_regs_at_entry (Lazy.force lv) i with
              | rf :: _ ->
                Easm.branch asm `Bsr rf decomp_entry_labels.(rf);
                Easm.word asm tag;
                entry_stub_words := !entry_stub_words + 2
              | [] ->
                Easm.instr asm
                  (Instr.Mem { op = Instr.Stw; ra = Reg.ra; rb = Reg.sp; disp = -4 });
                Easm.branch asm `Bsr Reg.ra decomp_push_label;
                Easm.word asm tag;
                entry_stub_words := !entry_stub_words + 3;
                incr push_form_stubs
            end
          | None -> (
            Easm.bind asm (label_of (f.name, i));
            List.iter
              (fun item ->
                match item with
                | Prog.Instr ins -> Easm.instr asm ins
                | Prog.Load_addr (r, Prog.Func_addr g) ->
                  Easm.load_addr asm r (label_of (g, 0))
                | Prog.Load_addr (r, Prog.Table_addr tid) ->
                  Easm.load_addr asm r (Hashtbl.find table_labels (f.name, tid)))
              b.items;
            let goto d =
              if not (d = i + 1 && i + 1 < n) then
                Easm.branch asm `Br Reg.zero (label_of (f.name, d))
            in
            match b.term with
            | Prog.Fallthrough d -> goto d
            | Prog.Jump d -> Easm.branch asm `Br Reg.zero (label_of (f.name, d))
            | Prog.Branch (c, r, taken, fall) ->
              Easm.cbranch asm c r (label_of (f.name, taken));
              goto fall
            | Prog.Call { ra; callee; return_to = _ } ->
              Easm.branch asm `Bsr ra (label_of (callee, 0))
            | Prog.Call_indirect { ra; rb; return_to = _ } ->
              Easm.instr asm (Instr.Jsr { ra; rb; hint = 0 })
            | Prog.Jump_indirect { rb; table = _ } ->
              Easm.instr asm (Instr.Jmp { ra = Reg.zero; rb; hint = 0 })
            | Prog.Return { rb } ->
              Easm.instr asm (Instr.Ret { ra = Reg.zero; rb; hint = 0 })
            | Prog.No_return -> ()))
        f.blocks;
      Easm.set_owner asm None;
      (* Retained jump tables: entries point at code or entry stubs. *)
      Array.iteri
        (fun tid entries ->
          Easm.bind asm (Hashtbl.find table_labels (f.name, tid));
          Array.iter (fun d -> Easm.addr_word asm (label_of (f.name, d))) entries)
        f.tables)
    p.funcs;
  (* The decompressor's code area: entry points hooked by the VM; filled
     with sentinels so a stray jump traps. *)
  let decomp_base = Easm.here asm in
  Array.iter
    (fun l ->
      Easm.bind asm l;
      Easm.word asm (Instr.encode Instr.Sentinel))
    decomp_entry_labels;
  Easm.bind asm decomp_push_label;
  Easm.word asm (Instr.encode Instr.Sentinel);
  Array.iter
    (fun l ->
      Easm.bind asm l;
      Easm.word asm (Instr.encode Instr.Sentinel))
    cs_labels;
  let used = (Easm.here asm - decomp_base) / 4 in
  if used > decomp_words then failwith "Rewrite.build: decomp_words too small";
  for _ = used + 1 to decomp_words do
    Easm.word asm (Instr.encode Instr.Sentinel)
  done;
  let text = Easm.finish asm in
  let addr_of key = Easm.resolve asm (label_of key) in
  let table_addr_of key = Easm.resolve asm (Hashtbl.find table_labels key) in
  (* Phase 3: region image contents. *)
  let pc_rel ~word_index target =
    let pc_next = buffer_base + (4 * (word_index + 1)) in
    let d = target - pc_next in
    if d land 3 <> 0 then failwith "Rewrite.build: unaligned buffer branch target";
    d asr 2
  in
  let images =
    Array.mapi
      (fun rid (r : Regions.region) ->
        let block_offset, buffer_words, ops = layouts.(rid) in
        let pos = ref 0 in
        let words = ref [] in
        let stream = ref [] in
        let push_plain ins =
          words := Plain ins :: !words;
          stream := ins :: !stream;
          incr pos
        in
        let target_addr = function
          | `Intra (fname, d) -> buffer_base + (4 * Hashtbl.find block_offset (fname, d))
          | `Ext (fname, d) -> addr_of (fname, d)
        in
        List.iter
          (fun op ->
            match op with
            | BInstr ins -> push_plain ins
            | BLoad_func (rg, g) ->
              let a = addr_of (g, 0) in
              let hi, lo = Easm.split_addr a in
              push_plain (Instr.Ldah { ra = rg; rb = Reg.zero; disp = hi });
              push_plain (Instr.Lda { ra = rg; rb = rg; disp = lo })
            | BLoad_table (rg, key) ->
              let a = table_addr_of key in
              let hi, lo = Easm.split_addr a in
              push_plain (Instr.Ldah { ra = rg; rb = Reg.zero; disp = hi });
              push_plain (Instr.Lda { ra = rg; rb = rg; disp = lo })
            | BBr (ra, dst) ->
              push_plain (Instr.Br { ra; disp = pc_rel ~word_index:!pos (target_addr dst) })
            | BCbr (c, ra, dst) ->
              push_plain
                (Instr.Cbr { op = c; ra; disp = pc_rel ~word_index:!pos (target_addr dst) })
            | BCall_direct (ra, `Intra g) ->
              push_plain
                (Instr.Bsr
                   {
                     ra;
                     disp =
                       pc_rel ~word_index:!pos
                         (buffer_base + (4 * Hashtbl.find block_offset (g, 0)));
                   })
            | BCall_direct (ra, `Addr g) ->
              push_plain (Instr.Bsr { ra; disp = pc_rel ~word_index:!pos (addr_of (g, 0)) })
            | BCall_expand (ra, g) ->
              (* Materialised as two words: [bsr ra, CS(ra)] then
                 [br zero, target]; the stream stores the br's displacement
                 in a Bsrx marker. *)
              let br_disp = pc_rel ~word_index:(!pos + 1) (addr_of (g, 0)) in
              words := Expand_call { ra; br_disp } :: !words;
              stream := Instr.Bsrx { ra; disp = br_disp } :: !stream;
              pos := !pos + 2
            | BCalli_expand (ra, rb) ->
              words := Expand_calli { ra; rb } :: !words;
              stream := Instr.Jsr { ra; rb; hint = 1 } :: !stream;
              pos := !pos + 2
            | BJmp rb -> push_plain (Instr.Jmp { ra = Reg.zero; rb; hint = 0 })
            | BRet rb -> push_plain (Instr.Ret { ra = Reg.zero; rb; hint = 0 }))
          ops;
        if !pos <> buffer_words then failwith "Rewrite.build: image size mismatch";
        ignore r;
        {
          rid;
          words = List.rev !words;
          buffer_words;
          stream = List.rev !stream;
          block_offset;
        })
      regions.Regions.regions
  in
  (* Phase 4: compress. *)
  let streams = Array.map (fun (img : region_image) -> img.stream) images in
  let codes = Compress.build_codes ~backend:coder streams in
  let blob, blob_offsets = Compress.encode_regions codes streams in
  let buffer_words =
    2 + Array.fold_left (fun acc (img : region_image) -> max acc img.buffer_words) 0 images
  in
  let entry_addr = addr_of (p.entry, 0) in
  let stub_addrs =
    Hashtbl.fold
      (fun key () acc -> (key, addr_of key) :: acc)
      regions.Regions.entries []
  in
  let label_bound fname i =
    match Hashtbl.find_opt region_of (fname, i) with
    | None -> true
    | Some _ -> Regions.is_entry regions fname i
  in
  let func_entry_addrs =
    List.filter_map
      (fun (f : Prog.Func.t) ->
        if label_bound f.name 0 then Some (f.name, addr_of (f.name, 0)) else None)
      p.funcs
  in
  let block_addrs =
    List.concat_map
      (fun (f : Prog.Func.t) ->
        List.filter_map Fun.id
          (List.init (Array.length f.blocks) (fun i ->
               if label_bound f.name i then
                 Some ((f.name, i), addr_of (f.name, i))
               else None)))
      p.funcs
  in
  let table_addrs =
    List.concat_map
      (fun (f : Prog.Func.t) ->
        List.init (Array.length f.tables) (fun tid ->
            ((f.name, tid), table_addr_of (f.name, tid))))
      p.funcs
  in
  {
    prog = p;
    text;
    images;
    blob;
    blob_offsets;
    codes;
    regions;
    blob_base;
    stub_base;
    max_stubs;
    buffer_base;
    buffer_words;
    decomp_base;
    decomp_words;
    entry_addr;
    entry_stub_words = !entry_stub_words;
    push_form_stubs = !push_form_stubs;
    stub_addrs;
    func_entry_addrs;
    block_addrs;
    table_addrs;
  }

let blob_words t = ((8 * String.length t.blob) + 31) / 32
let offset_table_words t = Array.length t.images
let code_table_words t = (Compress.table_bits t.codes + 31) / 32
let never_compressed_words t = Array.length t.text.Easm.words

let total_words t =
  never_compressed_words t + offset_table_words t + blob_words t + code_table_words t
  + (t.max_stubs * 4) + t.buffer_words
