(** The squash driver: profile-guided code compression end to end.

    Given a (typically squeezed) program and an execution profile, identify
    cold code at threshold [θ], form compressible regions bounded by [K],
    compress them with the split-stream canonical-Huffman coder, and build
    the rewritten executable with its runtime.

    The size metric follows the paper: a squashed program's footprint
    includes the never-compressed code, the entry stubs, the decompressor,
    the function offset table, the compressed code and its code tables, the
    restore-stub area, and the runtime buffer. *)

type options = Pass.options = {
  theta : float;  (** Cold-code threshold θ ∈ [0, 1]. *)
  k_bytes : int;  (** Runtime-buffer bound K (default 512). *)
  gamma : float;  (** Assumed compression factor for profitability. *)
  pack : bool;  (** Region packing pass (Section 4). *)
  use_buffer_safe : bool;  (** Buffer-safe call optimisation (Section 6.1). *)
  sharp_buffer_safe : bool;
      (** Sharpened buffer-safe analysis: indirect calls contribute their
          resolved candidate targets instead of poisoning the chain.  See
          {!Buffer_safe.analyze_sharp}. *)
  unswitch : bool;  (** Jump-table unswitching (Section 6.2). *)
  decomp_words : int;
  max_stubs : int;
  coder : Compress.backend;  (** Compression backend (Section 3 and its
                                 variants); default [`Split_stream]. *)
  regions_strategy : Regions.strategy;  (** Region construction algorithm. *)
}

val default_options : options
(** θ = 0.0, K = 512, γ = 0.66, all optimisations on, split-stream
    Huffman. *)

type result = {
  squashed : Rewrite.t;
  cold : Cold.t;
  regions : Regions.t;
  buffer_safe : Buffer_safe.t;
  resolved_jumps : (string * int) list;
      (** Indirect-jump sites the resolve pass annotated with an inferred
          jump table. *)
  unswitched : (string * int) list;
  excluded_funcs : string list;
      (** Functions exempted from compression: the entry function, setjmp
          callers, functions with unanalysable indirect jumps. *)
  original_words : int;  (** Footprint of the input program (words). *)
  squashed_words : int;
  options : options;
  stats : Pipeline.run_stats;
      (** Per-pass wall-clock timing and size deltas from the pipeline
          run; render with {!Pipeline.render_stats} or
          {!Pipeline.stats_json}. *)
}

val run :
  ?options:options -> ?setjmp_callers:string list -> ?check_each:bool ->
  ?lint:bool -> ?prove:bool -> ?trace:(string -> unit) -> ?obs:Obs.t ->
  Prog.t -> Profile.t -> result
(** A thin composition of the standard pass list: equivalent to
    [Pipeline.execute ~passes:(Pipeline.of_options options)] over
    [Pass.init].

    [setjmp_callers] names functions that call [setjmp]; the paper never
    compresses them (Section 2.2).  They are also detected directly from
    the program's [Sys setjmp] instructions, so the argument is only needed
    for call sites hidden behind indirection.

    [check_each] validates the IR (and, once built, the squashed image)
    after every pass and raises {!Pipeline.Check_failed} naming the pass
    that broke an invariant.  [lint] appends {!Pipeline.lint_pass}, running
    the whole-image static verifier ({!Verify}) over the finished image and
    raising {!Pipeline.Check_failed} as pass ["lint"] on any error-severity
    diagnostic.  [prove] appends {!Pipeline.prove_pass}, the symbolic
    equivalence prover ({!Prove}) over two cache slots, raising
    {!Pipeline.Check_failed} as pass ["prove"] on any unproved region.
    [trace] receives a one-line report per pass as it completes; [obs]
    receives pass-span events (see {!Pipeline.execute}). *)

val size_reduction : result -> float
(** [(original - squashed) / original], the quantity of Figures 6/7(a). *)

type size_breakdown = {
  never_compressed : int;
  entry_stubs : int;  (** Included in [never_compressed]; shown separately. *)
  decompressor : int;
  offset_table : int;
  compressed_code : int;
  code_tables : int;
  stub_area : int;
  runtime_buffer : int;
}

val breakdown : result -> size_breakdown
(** All fields in words. *)

val compressed_instr_count : result -> int
val gamma_achieved : result -> float
(** Actual compressed size / original size of the compressed regions
    (including code tables) — the paper reports ≈ 0.66. *)

val pp_summary : Format.formatter -> result -> unit
