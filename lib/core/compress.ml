(* Backend dispatch for the coder abstraction.  The model data lives in a
   plain variant so squash results stay marshal-safe; [pack] wraps it in a
   first-class {!Coder.S} module at each use site. *)

type backend = [ `Split_stream | `Split_stream_mtf | `Lzss | `Context ]
type work = Coder.work = { bits : int; steps : int }

type codes =
  | Huffman of Coder_split.plain_model
  | Huffman_mtf of Coder_split.mtf_model
  | Lzss_codec
  | Context_codes of Coder_context.model

type packed = Packed : (module Coder.S with type model = 'm) * 'm -> packed

let pack = function
  | Huffman m -> Packed ((module Coder_split.Plain), m)
  | Huffman_mtf m -> Packed ((module Coder_split.Mtf), m)
  | Lzss_codec -> Packed ((module Coder_lzss.M), ())
  | Context_codes m -> Packed ((module Coder_context.M), m)

let backend_of = function
  | Huffman _ -> `Split_stream
  | Huffman_mtf _ -> `Split_stream_mtf
  | Lzss_codec -> `Lzss
  | Context_codes _ -> `Context

let build_codes ?(backend = `Split_stream) regions =
  match backend with
  | `Split_stream -> Huffman (Coder_split.Plain.build regions)
  | `Split_stream_mtf -> Huffman_mtf (Coder_split.Mtf.build regions)
  | `Lzss -> Lzss_codec
  | `Context -> Context_codes (Coder_context.M.build regions)

let coder_name codes =
  let (Packed ((module C), _)) = pack codes in
  C.name

let encode_regions codes regions =
  let (Packed ((module C), m)) = pack codes in
  C.encode_regions m regions

let decode_region codes blob ~bit_offset ?bit_end () =
  let bit_end = Option.value ~default:(8 * String.length blob) bit_end in
  let (Packed ((module C), m)) = pack codes in
  C.decode_region m blob ~bit_offset ~bit_end

let table_bits codes =
  let (Packed ((module C), m)) = pack codes in
  C.table_bits m

let compressed_bits codes regions =
  let blob, _ = encode_regions codes regions in
  8 * String.length blob

let stream_stats codes =
  let (Packed ((module C), m)) = pack codes in
  C.stream_stats m

let stream_bits codes regions =
  let (Packed ((module C), m)) = pack codes in
  C.stream_bits m regions

let mtf_gain_bits = Coder_split.mtf_gain_bits
