type region = { id : int; blocks : (string * int) list }

type t = {
  regions : region array;
  region_of : (string * int, int) Hashtbl.t;
  entries : (string * int, unit) Hashtbl.t;
  rejected_blocks : int;
}

type strategy = [ `Dfs | `Linear ]
type packer = [ `Incremental | `Rescan ]

type params = { k_bytes : int; gamma : float; pack : bool; strategy : strategy }

let default_params = { k_bytes = 512; gamma = 0.66; pack = true; strategy = `Dfs }

let entry_stub_words = 2

(* Conservative buffer-image size of a block: its canonical size plus slack
   for a materialised boundary jump or an expanded call. *)
let block_cost (f : Prog.Func.t) i = Prog.Block.instr_count f.blocks.(i) + 2

module Int_set = Set.Make (Int)

(* ------------------------------------------------------------------ *)

type facts = {
  prog : Prog.t;
  func_of : (string, Prog.Func.t) Hashtbl.t;
  preds : (string, int list array) Hashtbl.t;
  callers_of_entry : (string, (string * int) list) Hashtbl.t;
      (* direct call sites per callee, as (caller function, caller block) *)
  address_taken : (string, unit) Hashtbl.t;
  table_targets : (string * int, unit) Hashtbl.t;
      (* blocks that a retained jump table can reach *)
}

let gather_facts (p : Prog.t) =
  let func_of = Hashtbl.create 64 in
  let preds = Hashtbl.create 64 in
  let callers_of_entry = Hashtbl.create 64 in
  let address_taken = Hashtbl.create 16 in
  let table_targets = Hashtbl.create 64 in
  List.iter
    (fun (f : Prog.Func.t) ->
      Hashtbl.replace func_of f.name f;
      Hashtbl.replace preds f.name (Cfg.preds f);
      Array.iter
        (fun (b : Prog.Block.t) ->
          List.iter
            (function
              | Prog.Load_addr (_, Prog.Func_addr g) -> Hashtbl.replace address_taken g ()
              | Prog.Load_addr (_, Prog.Table_addr _) | Prog.Instr _ -> ())
            b.items;
          ())
        f.blocks;
      Array.iteri
        (fun i (b : Prog.Block.t) ->
          match b.term with
          | Prog.Call { callee; _ } ->
            Hashtbl.replace callers_of_entry callee
              ((f.name, i)
              :: Option.value ~default:[] (Hashtbl.find_opt callers_of_entry callee))
          | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _ | Prog.Call_indirect _
          | Prog.Jump_indirect _ | Prog.Return _ | Prog.No_return ->
            ())
        f.blocks;
      Array.iter
        (fun entries ->
          Array.iter (fun d -> Hashtbl.replace table_targets (f.name, d) ()) entries)
        f.tables)
    p.funcs;
  { prog = p; func_of; preds; callers_of_entry; address_taken; table_targets }

(* ------------------------------------------------------------------ *)
(* The entry-stub predicate.

   A block needs an entry stub iff control can reach it from outside its
   region.  A called function's entry can only go stub-less when the callee
   is entirely inside one region and every direct call site sits in that
   same region — the condition under which {!Rewrite} emits the call as a
   plain intra-buffer [bsr].

   This is the ONE implementation, parameterized by a membership function:
   phase-1 profitability evaluates it against a tentative block set, the
   packers against a (hypothetically merged) region, and {!compute_entries}
   against the final partition.  It used to exist as three hand-rolled
   copies that disagreed on the called-entry refinement, overpricing E in
   the §4 profitability test. *)

(* A called entry is reachable from outside the candidate region unless the
   whole callee and every direct call site are members. *)
let called_entry_external facts ~member fname =
  match Hashtbl.find_opt facts.callers_of_entry fname with
  | None | Some [] -> false
  | Some callers ->
    let fully_inside =
      match Hashtbl.find_opt facts.func_of fname with
      | None -> false
      | Some f ->
        let n = Array.length f.Prog.Func.blocks in
        let rec all j = j >= n || (member (fname, j) && all (j + 1)) in
        all 0
    in
    (not fully_inside) || List.exists (fun site -> not (member site)) callers

let needs_entry_stub facts ~member fname i =
  List.exists
    (fun pr -> not (member (fname, pr)))
    (Hashtbl.find facts.preds fname).(i)
  || (i = 0
     && (Hashtbl.mem facts.address_taken fname
        || fname = facts.prog.Prog.entry
        || called_entry_external facts ~member fname))
  || Hashtbl.mem facts.table_targets (fname, i)

let compute_entries facts region_of =
  let entries = Hashtbl.create 64 in
  List.iter
    (fun (f : Prog.Func.t) ->
      Array.iteri
        (fun i _ ->
          let key = (f.name, i) in
          match Hashtbl.find_opt region_of key with
          | None -> ()
          | Some rid ->
            let member other = Hashtbl.find_opt region_of other = Some rid in
            if needs_entry_stub facts ~member f.name i then
              Hashtbl.replace entries key ())
        f.blocks)
    facts.prog.Prog.funcs;
  entries

(* The same predicate, decomposed into independent causes for a block
   already placed in region [r = region_of key].  The block needs a stub
   iff [perm] (a cause no merge can remove: a predecessor or call site
   outside every region, a partly-unplaced callee body, a taken address,
   the program entry, a jump-table target) or [needs] is non-empty (the
   other regions control enters from).  The stub disappears in a merged
   region M ⊇ r exactly when not [perm] and [needs ⊆ M] — the invalidation
   rule the incremental packer maintains. *)
let entry_causes facts region_of ((fname, i) as key) =
  let r = Hashtbl.find region_of key in
  let perm = ref false in
  let needs = ref Int_set.empty in
  let note other =
    match Hashtbl.find_opt region_of other with
    | None -> perm := true
    | Some r' -> if r' <> r then needs := Int_set.add r' !needs
  in
  List.iter (fun pr -> note (fname, pr)) (Hashtbl.find facts.preds fname).(i);
  (if i = 0 then
     if Hashtbl.mem facts.address_taken fname || fname = facts.prog.Prog.entry
     then perm := true
     else
       match Hashtbl.find_opt facts.callers_of_entry fname with
       | None | Some [] -> ()
       | Some callers -> (
         List.iter note callers;
         match Hashtbl.find_opt facts.func_of fname with
         | None -> perm := true
         | Some f -> Array.iteri (fun j _ -> note (fname, j)) f.Prog.Func.blocks));
  if Hashtbl.mem facts.table_targets key then perm := true;
  (!perm, !needs)

(* Calls whose caller block and callee entry block could fall in different
   regions; used by the packing gain.  Call sites whose callee has no body
   in the program (e.g. a stripped intrinsic) can never pair two regions
   and are skipped. *)
let direct_calls facts =
  List.concat_map
    (fun (f : Prog.Func.t) ->
      Array.to_list
        (Array.mapi (fun i (b : Prog.Block.t) -> (i, b.Prog.Block.term)) f.blocks)
      |> List.filter_map (fun (i, term) ->
             match term with
             | Prog.Call { callee; _ } when Hashtbl.mem facts.func_of callee ->
               Some ((f.name, i), (callee, 0))
             | _ -> None))
    facts.prog.Prog.funcs

(* ------------------------------------------------------------------ *)
(* Phase 2: packing.  Merge the pair of regions with the best stub-plus-call
   savings until no profitable pair fits the bound.

   Both packers implement the same specification:

     gain(a, b) = entry_stub_words · |{entry blocks of a∪b whose only
                  causes lie in the partner region}|
                + 2 · |direct calls crossing between a and b|

     each round, merge the pair with maximal positive gain whose combined
     cost fits the buffer bound; ties break to the lexicographically
     smallest (id, id) pair; the merged region keeps the smaller id and
     lays the smaller id's blocks out first.

   [`Rescan] recomputes every fact from scratch each round and scans all
   O(R²) region pairs — the executable specification, kept as the
   regression reference and the "before" of the perf comparison.
   [`Incremental] gathers the facts once into indexed form and after each
   merge re-evaluates only the pairs the merge touched. *)

type pack_region = { mutable blocks : (string * int) list; mutable cost : int }

let ordered_pair a b = if a < b then (a, b) else (b, a)

(* Per-round weight tables shared by the two packers' bookkeeping:
   [callw (a, b)] is 2·(calls crossing a↔b); [sngw (a, b)] is
   entry_stub_words·(entry blocks of a needing exactly {b} plus entry
   blocks of b needing exactly {a}). *)
let bump tbl key d =
  let v = Option.value ~default:0 (Hashtbl.find_opt tbl key) + d in
  if v = 0 then Hashtbl.remove tbl key else Hashtbl.replace tbl key v

let weight tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

let cost_of facts r =
  List.fold_left
    (fun acc (fname, i) -> acc + block_cost (Hashtbl.find facts.func_of fname) i)
    0 r.blocks

let pack_rescan facts ~k_words ~calls ~region_of regions =
  let continue = ref true in
  while !continue do
    (* Recompute everything: costs, crossing calls, and the per-block entry
       causes (the per-round compute_entries of the old code). *)
    let cost = Hashtbl.create 64 in
    List.iter (fun (id, r) -> Hashtbl.replace cost id (cost_of facts r)) !regions;
    let callw = Hashtbl.create 64 in
    List.iter
      (fun (site, (callee, _)) ->
        match
          (Hashtbl.find_opt region_of site, Hashtbl.find_opt region_of (callee, 0))
        with
        | Some ra, Some rb when ra <> rb -> bump callw (ordered_pair ra rb) 2
        | _ -> ())
      calls;
    let sngw = Hashtbl.create 64 in
    List.iter
      (fun (id, r) ->
        List.iter
          (fun key ->
            let perm, needs = entry_causes facts region_of key in
            if (not perm) && Int_set.cardinal needs = 1 then
              bump sngw (ordered_pair id (Int_set.choose needs)) entry_stub_words)
          r.blocks)
      !regions;
    (* Scan all region pairs for the best merge. *)
    let ids = Array.of_list (List.map fst !regions) in
    let nr = Array.length ids in
    let best = ref None in
    for ai = 0 to nr - 1 do
      for bi = ai + 1 to nr - 1 do
        let pair = ordered_pair ids.(ai) ids.(bi) in
        if Hashtbl.find cost ids.(ai) + Hashtbl.find cost ids.(bi) <= k_words
        then begin
          let g = weight sngw pair + weight callw pair in
          if g > 0 then
            (* Max gain; ties to the smallest (id, id) pair. *)
            match !best with
            | Some (bg, bp) when bg > g || (bg = g && bp < pair) -> ()
            | _ -> best := Some (g, pair)
        end
      done
    done;
    match !best with
    | None -> continue := false
    | Some (_, (a, b)) ->
      let ra = List.assoc a !regions and rb = List.assoc b !regions in
      let merged = { blocks = ra.blocks @ rb.blocks; cost = 0 } in
      List.iter (fun key -> Hashtbl.replace region_of key a) rb.blocks;
      regions :=
        List.filter_map
          (fun (id, r) ->
            if id = a then Some (a, merged)
            else if id = b then None
            else Some (id, r))
          !regions
  done

(* A binary min-heap of candidate pairs ordered by (-gain, a, b): the top
   is the maximal-gain pair, ties broken to the smallest id pair — the
   same order the rescan packer's scan produces.  Entries are never
   deleted; staleness is detected at pop time by recomputing the gain. *)
module Pair_heap = struct
  type entry = { g : int; a : int; b : int }

  type t = { mutable arr : entry array; mutable len : int }

  let create () = { arr = Array.make 64 { g = 0; a = 0; b = 0 }; len = 0 }

  let before e1 e2 = (-e1.g, e1.a, e1.b) < (-e2.g, e2.a, e2.b)

  let push h e =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) e in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.arr.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if before h.arr.(!i) h.arr.(parent) then begin
        let tmp = h.arr.(parent) in
        h.arr.(parent) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && before h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

(* Incremental greedy merging over indexed facts.

   Indexed state (invariants between merges):
   - [states]: alive regions, their blocks (layout order) and cost;
   - [call_nbrs]: per region, crossing-call weight to each partner region
     (symmetric adjacency of the direct-call graph quotient);
   - [causes]: for every entry block with no permanent cause, its owner
     region and the set of partner regions its stub depends on, with a
     reverse index [dependents] (region → blocks whose needs mention it)
     and [sng] (owner → partner → count of blocks needing exactly that
     partner, i.e. the stub savings of that merge);
   - [heap]: every pair with positive gain has an entry carrying its
     current gain (stale entries are skipped at pop time).

   Invalidation rule: merging b into a only changes facts mentioning a or
   b — blocks owned by b (owner rename), blocks whose needs mention a or b
   (need rename b→a, then drop needs now internal to a), and call edges
   incident to a or b.  Only pairs touched by those updates can change
   gain, so only they are re-pushed. *)
let pack_incremental facts ~k_words ~calls ~region_of regions =
  let states = Hashtbl.create 64 in
  List.iter (fun (id, r) -> Hashtbl.replace states id r) !regions;
  let sub_tbl tbl id =
    match Hashtbl.find_opt tbl id with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 8 in
      Hashtbl.replace tbl id t;
      t
  in
  (* Crossing-call adjacency. *)
  let call_nbrs : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (site, (callee, _)) ->
      match
        (Hashtbl.find_opt region_of site, Hashtbl.find_opt region_of (callee, 0))
      with
      | Some ra, Some rb when ra <> rb ->
        bump (sub_tbl call_nbrs ra) rb 2;
        bump (sub_tbl call_nbrs rb) ra 2
      | _ -> ())
    calls;
  (* Entry causes, reverse index, singleton-need counts. *)
  let causes : (string * int, int ref * Int_set.t ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let dependents : (int, (string * int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let sng : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (id, r) ->
      List.iter
        (fun key ->
          let perm, needs = entry_causes facts region_of key in
          if (not perm) && not (Int_set.is_empty needs) then begin
            Hashtbl.replace causes key (ref id, ref needs);
            Int_set.iter
              (fun n -> Hashtbl.replace (sub_tbl dependents n) key ())
              needs;
            if Int_set.cardinal needs = 1 then
              bump (sub_tbl sng id) (Int_set.choose needs) 1
          end)
        r.blocks)
    !regions;
  let sng_get o p =
    match Hashtbl.find_opt sng o with Some t -> weight t p | None -> 0
  in
  let callw_get a b =
    match Hashtbl.find_opt call_nbrs a with Some t -> weight t b | None -> 0
  in
  let gain a b =
    (entry_stub_words * (sng_get a b + sng_get b a)) + callw_get a b
  in
  let heap = Pair_heap.create () in
  let push_pair (a, b) =
    match (Hashtbl.find_opt states a, Hashtbl.find_opt states b) with
    | Some ra, Some rb when ra.cost + rb.cost <= k_words ->
      let g = gain a b in
      if g > 0 then Pair_heap.push heap { Pair_heap.g; a; b }
    | _ -> ()
  in
  (* Initial candidates: every pair adjacent through a call edge or a
     singleton need — any other pair has gain 0 and can never be merged
     until an intervening merge touches it. *)
  let initial = Hashtbl.create 64 in
  Hashtbl.iter
    (fun a t -> Hashtbl.iter (fun b _ -> Hashtbl.replace initial (ordered_pair a b) ()) t)
    call_nbrs;
  Hashtbl.iter
    (fun o t -> Hashtbl.iter (fun p _ -> Hashtbl.replace initial (ordered_pair o p) ()) t)
    sng;
  Hashtbl.iter (fun pair () -> push_pair pair) initial;
  let continue = ref true in
  while !continue do
    match Pair_heap.pop heap with
    | None -> continue := false
    | Some { Pair_heap.g; a; b } -> (
      match (Hashtbl.find_opt states a, Hashtbl.find_opt states b) with
      | Some ra, Some rb when gain a b = g ->
        if ra.cost + rb.cost <= k_words then begin
          (* Merge b into a (a < b by construction). *)
          let touched = Hashtbl.create 16 in
          let touch o p = if o <> p then Hashtbl.replace touched (ordered_pair o p) () in
          List.iter (fun key -> Hashtbl.replace region_of key a) rb.blocks;
          ra.blocks <- ra.blocks @ rb.blocks;
          ra.cost <- ra.cost + rb.cost;
          Hashtbl.remove states b;
          (* Call edges of b fold into a. *)
          (match Hashtbl.find_opt call_nbrs b with
          | None -> ()
          | Some eb ->
            Hashtbl.remove call_nbrs b;
            (match Hashtbl.find_opt call_nbrs a with
            | Some ea -> Hashtbl.remove ea b
            | None -> ());
            Hashtbl.iter
              (fun n w ->
                if n <> a then begin
                  bump (sub_tbl call_nbrs a) n w;
                  let en = sub_tbl call_nbrs n in
                  Hashtbl.remove en b;
                  bump en a w;
                  touch a n
                end)
              eb);
          (* Re-derive the causes of every block the merge can affect:
             blocks whose needs mention a or b, and entry blocks owned by
             the late b (their owner changes). *)
          let affected = Hashtbl.create 32 in
          let snapshot id =
            match Hashtbl.find_opt dependents id with
            | None -> ()
            | Some d -> Hashtbl.iter (fun key () -> Hashtbl.replace affected key ()) d
          in
          snapshot a;
          snapshot b;
          List.iter
            (fun key ->
              if Hashtbl.mem causes key then Hashtbl.replace affected key ())
            rb.blocks;
          Hashtbl.iter
            (fun key () ->
              let owner, needs = Hashtbl.find causes key in
              (* Retract the old singleton contribution. *)
              (if Int_set.cardinal !needs = 1 then begin
                 let p = Int_set.choose !needs in
                 bump (sub_tbl sng !owner) p (-1);
                 touch !owner p
               end);
              let new_owner = Hashtbl.find region_of key in
              let renamed =
                Int_set.map (fun r -> if r = b then a else r) !needs
              in
              let new_needs = Int_set.remove new_owner renamed in
              (* Keep the reverse index for a in step: b's table is dropped
                 wholesale below; entries for other regions are unchanged
                 by construction. *)
              (match
                 (Int_set.mem a !needs || Int_set.mem b !needs,
                  Int_set.mem a new_needs)
               with
              | true, false -> (
                match Hashtbl.find_opt dependents a with
                | Some d -> Hashtbl.remove d key
                | None -> ())
              | _, true -> Hashtbl.replace (sub_tbl dependents a) key ()
              | false, false -> ());
              if Int_set.is_empty new_needs then Hashtbl.remove causes key
              else begin
                owner := new_owner;
                needs := new_needs;
                if Int_set.cardinal new_needs = 1 then begin
                  let p = Int_set.choose new_needs in
                  bump (sub_tbl sng new_owner) p 1;
                  touch new_owner p
                end
              end)
            affected;
          Hashtbl.remove dependents b;
          (* b's ownership table is now empty of live counts; drop it. *)
          Hashtbl.remove sng b;
          Hashtbl.iter (fun pair () -> push_pair pair) touched
        end
      | _ -> (* dead region or stale gain: a fresh entry exists if the pair
                is still profitable *) ())
  done;
  regions := List.filter (fun (id, _) -> Hashtbl.mem states id) !regions

(* ------------------------------------------------------------------ *)

let build ?(packer = `Incremental) (p : Prog.t) ~compressible ~params =
  let facts = gather_facts p in
  let k_words = max 4 (params.k_bytes / 4) in
  let region_of = Hashtbl.create 256 in
  let regions = ref [] in
  let next_id = ref 0 in
  let rejected = ref 0 in
  (* Phase 1: grow DFS trees of compressible blocks, one function at a
     time. *)
  List.iter
    (fun (f : Prog.Func.t) ->
      let n = Array.length f.blocks in
      (* [placed] mirrors region_of for this function's blocks, avoiding a
         hashtable probe (and its key allocation) per admissibility test in
         the growth loops. *)
      let placed = Array.make n false in
      let no_restart = Array.make n false in
      Array.iteri
        (fun root _ ->
          if
            compressible f.name root
            && (not placed.(root))
            && not no_restart.(root)
          then begin
            (* Depth-first growth bounded by the buffer budget.

               A call-terminated block is only usable together with its
               lexical continuation: the hardware return address is [pc+4],
               so the continuation must sit immediately after the call in
               the buffer image.  We therefore grow in atomic "call chains"
               — maximal runs [i, i+1, ...] where each block but the last
               ends in a call — and add a chain either whole or not at
               all. *)
            let members = ref [] in
            let size = ref 0 in
            let visited = Array.make n false in
            let admissible i =
              i >= 0 && i < n
              && (not visited.(i))
              && compressible f.name i
              && not placed.(i)
            in
            (* The chain rooted at [i], last block first.  return_to is
               always i+1 (validated), so chains are finite. *)
            let rec chain_of i acc =
              match f.blocks.(i).Prog.Block.term with
              | Prog.Call { return_to; _ } | Prog.Call_indirect { return_to; _ } ->
                chain_of return_to (i :: acc)
              | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _
              | Prog.Jump_indirect _ | Prog.Return _ | Prog.No_return ->
                i :: acc
            in
            (* Try to add the whole call chain rooted at [i]; on success
               return its last block. *)
            let try_add_chain i =
              match chain_of i [] with
              | [] -> None
              | last :: _ as rev_chain ->
                if List.for_all admissible rev_chain then begin
                  let c =
                    List.fold_left (fun acc j -> acc + block_cost f j) 0 rev_chain
                  in
                  if !size + c <= k_words then begin
                    size := !size + c;
                    List.iter
                      (fun j ->
                        visited.(j) <- true;
                        members := j :: !members)
                      (List.rev rev_chain);
                    Some last
                  end
                  else None
                end
                else begin
                  (* The chain is blocked (its tail is hot, oversized or
                     already claimed); never retry from this head. *)
                  visited.(i) <- true;
                  None
                end
            in
            let rec grow i =
              if admissible i then
                match try_add_chain i with
                | Some last ->
                  (* Only the last chain block has successors other than a
                     call continuation. *)
                  List.iter grow (Prog.successors f last)
                | None -> ()
            in
            (* Linear scan: take consecutive admissible chains in block
               order until one no longer fits (the paper's future-work
               "other algorithms for constructing regions"). *)
            let rec linear i =
              if i < n && admissible i then
                match try_add_chain i with
                | Some last -> linear (last + 1)
                | None -> ()
            in
            (match params.strategy with `Dfs -> grow root | `Linear -> linear root);
            let members = List.rev !members in
            match members with
            | [] -> no_restart.(root) <- true
            | _ :: _ ->
              (* Profitability: entry stubs cost E, compression saves
                 (1-γ)·I — with E counted by the same predicate the final
                 entry computation uses, against the tentative members. *)
              let instrs =
                List.fold_left
                  (fun acc i -> acc + Prog.Block.instr_count f.blocks.(i))
                  0 members
              in
              let tentative = Hashtbl.create 8 in
              List.iter (fun i -> Hashtbl.replace tentative (f.name, i) ()) members;
              let member key = Hashtbl.mem tentative key in
              let entry_count =
                List.length
                  (List.filter
                     (fun i -> needs_entry_stub facts ~member f.name i)
                     members)
              in
              let stub_words = entry_stub_words * entry_count in
              if
                float_of_int stub_words
                < (1.0 -. params.gamma) *. float_of_int instrs
              then begin
                List.iter
                  (fun i ->
                    placed.(i) <- true;
                    Hashtbl.replace region_of (f.name, i) !next_id)
                  members;
                regions :=
                  { id = !next_id; blocks = List.map (fun i -> (f.name, i)) members }
                  :: !regions;
                incr next_id
              end
              else begin
                rejected := !rejected + List.length members;
                no_restart.(root) <- true
              end
          end)
        f.blocks)
    p.funcs;
  let regions = ref (List.rev !regions) in
  (* Phase 2: packing. *)
  if params.pack then begin
    let calls = direct_calls facts in
    let packable =
      ref
        (List.map
           (fun (r : region) ->
             let pr = { blocks = r.blocks; cost = 0 } in
             pr.cost <- cost_of facts pr;
             (r.id, pr))
           !regions)
    in
    (match packer with
    | `Rescan -> pack_rescan facts ~k_words ~calls ~region_of packable
    | `Incremental -> pack_incremental facts ~k_words ~calls ~region_of packable);
    regions :=
      List.map (fun (id, (pr : pack_region)) -> { id; blocks = pr.blocks }) !packable
  end;
  (* Renumber densely in a stable order. *)
  let ordered =
    List.sort (fun r1 r2 -> compare r1.id r2.id) !regions
    |> List.mapi (fun i r -> { r with id = i })
  in
  Hashtbl.reset region_of;
  List.iter
    (fun r -> List.iter (fun key -> Hashtbl.replace region_of key r.id) r.blocks)
    ordered;
  let entries = compute_entries facts region_of in
  {
    regions = Array.of_list ordered;
    region_of;
    entries;
    rejected_blocks = !rejected;
  }

let entry_count_if_region (p : Prog.t) blocks =
  let facts = gather_facts p in
  let tentative = Hashtbl.create 16 in
  List.iter (fun key -> Hashtbl.replace tentative key ()) blocks;
  let member key = Hashtbl.mem tentative key in
  List.length
    (List.filter (fun (fname, i) -> needs_entry_stub facts ~member fname i) blocks)

let region_blocks t id = t.regions.(id).blocks
let block_region t f b = Hashtbl.find_opt t.region_of (f, b)
let is_entry t f b = Hashtbl.mem t.entries (f, b)

let compressed_instr_count (p : Prog.t) t =
  List.fold_left
    (fun acc (f : Prog.Func.t) ->
      let sub = ref 0 in
      Array.iteri
        (fun i b ->
          if Hashtbl.mem t.region_of (f.name, i) then
            sub := !sub + Prog.Block.instr_count b)
        f.blocks;
      acc + !sub)
    0 p.funcs
