type stats = {
  mutable decompressions : int;
  mutable bits_decoded : int;
  mutable model_steps : int;
  mutable words_materialised : int;
  mutable cache_hits : int;
  mutable cache_evictions : int;
  mutable stub_creates : int;
  mutable stub_reuses : int;
  mutable stub_frees : int;
  mutable live_stubs : int;
  mutable max_live_stubs : int;
  per_region : int array;
  per_region_cycles : int array;
}

let stats_to_json (s : stats) =
  let open Report.Json in
  let ints arr = List (Array.to_list (Array.map (fun v -> Int v) arr)) in
  Obj
    [
      ("decompressions", Int s.decompressions);
      ("bits_decoded", Int s.bits_decoded);
      ("model_steps", Int s.model_steps);
      ("words_materialised", Int s.words_materialised);
      ("cache_hits", Int s.cache_hits);
      ("cache_evictions", Int s.cache_evictions);
      ("stub_creates", Int s.stub_creates);
      ("stub_reuses", Int s.stub_reuses);
      ("stub_frees", Int s.stub_frees);
      ("live_stubs", Int s.live_stubs);
      ("max_live_stubs", Int s.max_live_stubs);
      ("per_region", ints s.per_region);
      ("per_region_cycles", ints s.per_region_cycles);
    ]

(* Replay end-of-run aggregates into a metrics registry.  Used when the
   run itself happened elsewhere (e.g. a cached timing result) so live
   events never fired; deterministic for a given stats value.  Every
   decompression is by definition a cache miss, so the miss counter is
   replayed from [decompressions]. *)
let observe_stats (o : Obs.t) (s : stats) =
  Obs.incr o ~by:s.decompressions "runtime.decompressions";
  Obs.incr o ~by:s.decompressions "runtime.cache_misses";
  Obs.incr o ~by:s.cache_hits "runtime.cache_hits";
  Obs.incr o ~by:s.cache_evictions "runtime.cache_evictions";
  Obs.incr o ~by:s.bits_decoded "runtime.bits_decoded";
  Obs.incr o ~by:s.model_steps "runtime.model_steps";
  Obs.incr o ~by:s.words_materialised "runtime.words_materialised";
  Obs.incr o ~by:s.stub_creates "runtime.stub_creates";
  Obs.incr o ~by:s.stub_reuses "runtime.stub_reuses";
  Obs.incr o ~by:s.stub_frees "runtime.stub_frees";
  Obs.max_gauge o "runtime.max_live_stubs" s.max_live_stubs;
  Array.iter
    (fun n -> if n > 0 then Obs.observe o "runtime.region_redecompressions" n)
    s.per_region

type stub_slot = { mutable key : int * int; mutable count : int }
(* key = (region id, slot-relative resume offset); count = 0 means free.
   The key is slot-independent on purpose: a region that re-materialises in
   a different cache slot and makes the same outgoing call reuses the same
   restore stub, because the stub's tag already names the (region, offset)
   pair rather than an absolute buffer address. *)

type cache_slot = { mutable rid : int; mutable stamp : int }
(* One decompressed-region buffer: [rid] is the resident region (-1 when
   empty), [stamp] the LRU clock value of its last use. *)

type state = {
  sq : Rewrite.t;
  cost : Cost.model;
  stats : stats;
  slots : stub_slot array;
  by_key : (int * int, int) Hashtbl.t;  (* key -> stub slot index *)
  cache : cache_slot array;
  region_slot : int array;  (* region id -> cache slot index; -1 if absent *)
  region_refs : int array;  (* region id -> live restore stubs tagged with it *)
  mutable tick : int;  (* LRU clock *)
  obs : Obs.t option;
  stub_born : int array;  (* cycle stamp when the slot last became live *)
  mutable last_decomp_end : int;  (* cycle stamp of the previous decompression *)
}

let stub_addr st slot = st.sq.Rewrite.stub_base + (16 * slot)
let slot_base st slot = st.sq.Rewrite.buffer_base + (4 * st.sq.Rewrite.buffer_words * slot)

let touch st slot =
  st.tick <- st.tick + 1;
  st.cache.(slot).stamp <- st.tick

(* Choose the cache slot for an incoming materialisation: an empty slot if
   one exists, otherwise evict the least-recently-used slot, preferring
   victims whose region has no live restore stubs.  (Evicting a referenced
   region is still functionally safe — stub tags are (region, offset)
   pairs resolved through the residency map on re-entry — it just makes a
   future miss more likely, so referenced regions go last.) *)
let pick_slot st vm =
  let n = Array.length st.cache in
  let empty = ref (-1) in
  for s = n - 1 downto 0 do
    if st.cache.(s).rid < 0 then empty := s
  done;
  if !empty >= 0 then !empty
  else begin
    let score s =
      let c = st.cache.(s) in
      ((if st.region_refs.(c.rid) > 0 then 1 else 0), c.stamp)
    in
    let victim = ref 0 in
    for s = 1 to n - 1 do
      if score s < score !victim then victim := s
    done;
    let c = st.cache.(!victim) in
    st.region_slot.(c.rid) <- -1;
    st.stats.cache_evictions <- st.stats.cache_evictions + 1;
    (match st.obs with
    | None -> ()
    | Some o ->
      Obs.event o
        { ts = Obs.Event.Cycles (Vm.cycles vm);
          payload = Obs.Event.Cache_evict { region = c.rid; slot = !victim } };
      Obs.incr o "runtime.cache_evictions");
    c.rid <- -1;
    !victim
  end

(* Materialise region [rid] into cache slot [slot] and charge cycles.  The
   slot decides the buffer base, so every pc-relative displacement and
   every stub resume offset is computed against this materialisation's
   address, not a global buffer. *)
let decompress st vm rid ~slot =
  let sq = st.sq in
  let base = slot_base st slot in
  let offsets = sq.Rewrite.blob_offsets in
  let bit_end =
    if rid + 1 < Array.length offsets then Some offsets.(rid + 1) else None
  in
  (match st.obs with
  | None -> ()
  | Some o ->
    Obs.event o
      { ts = Obs.Event.Cycles (Vm.cycles vm);
        payload = Obs.Event.Decomp_begin { region = rid } });
  let instrs, { Compress.bits; steps } =
    Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
      ~bit_offset:offsets.(rid) ?bit_end ()
  in
  let pos = ref 0 in
  let put w =
    Vm.store_word vm (base + (4 * !pos)) w;
    incr pos
  in
  let pc_rel_to target =
    (* Displacement for an instruction being placed at position !pos. *)
    (target - (base + (4 * (!pos + 1)))) asr 2
  in
  let delta = sq.Rewrite.buffer_words * slot in
  let rebias disp =
    (* Stream displacements were computed for a slot-0 materialisation
       (Rewrite's [pc_rel]).  Intra-region targets move with the buffer, so
       their relative displacement is unchanged; external targets (text,
       the runtime entry points) sit below the buffer area and must be
       re-aimed from this slot's base. *)
    let target0 = sq.Rewrite.buffer_base + (4 * (!pos + 1)) + (4 * disp) in
    if target0 >= sq.Rewrite.buffer_base then disp else disp - delta
  in
  List.iter
    (fun ins ->
      match ins with
      | Instr.Bsrx { ra; disp } ->
        (* Expand: bsr ra, CreateStub(ra) ; br zero, disp. *)
        put
          (Instr.encode
             (Instr.Bsr { ra; disp = pc_rel_to (Rewrite.create_stub_entry sq ra) }));
        put (Instr.encode (Instr.Br { ra = Reg.zero; disp = rebias disp }))
      | Instr.Jsr { ra; rb; hint = 1 } ->
        put
          (Instr.encode
             (Instr.Bsr { ra; disp = pc_rel_to (Rewrite.create_stub_entry sq ra) }));
        put (Instr.encode (Instr.Jmp { ra = Reg.zero; rb; hint = 0 }))
      | Instr.Br { ra; disp } -> put (Instr.encode (Instr.Br { ra; disp = rebias disp }))
      | Instr.Cbr { op; ra; disp } ->
        put (Instr.encode (Instr.Cbr { op; ra; disp = rebias disp }))
      | Instr.Bsr { ra; disp } -> put (Instr.encode (Instr.Bsr { ra; disp = rebias disp }))
      | ins -> put (Instr.encode ins))
    instrs;
  st.cache.(slot).rid <- rid;
  st.region_slot.(rid) <- slot;
  st.stats.decompressions <- st.stats.decompressions + 1;
  st.stats.bits_decoded <- st.stats.bits_decoded + bits;
  st.stats.model_steps <- st.stats.model_steps + steps;
  st.stats.words_materialised <- st.stats.words_materialised + !pos;
  st.stats.per_region.(rid) <- st.stats.per_region.(rid) + 1;
  let charged =
    st.cost.Cost.decomp_invoke
    + (bits * st.cost.Cost.decomp_per_bit)
    + (steps * st.cost.Cost.decomp_per_step)
    + (!pos * st.cost.Cost.decomp_per_instr)
    + st.cost.Cost.icache_flush
  in
  st.stats.per_region_cycles.(rid) <- st.stats.per_region_cycles.(rid) + charged;
  Vm.add_cycles vm charged;
  match st.obs with
  | None -> ()
  | Some o ->
    let now = Vm.cycles vm in
    Obs.event o
      { ts = Obs.Event.Cycles now;
        payload =
          Obs.Event.Decomp_end { region = rid; bits; words = !pos; cycles = charged } };
    Obs.incr o "runtime.decompressions";
    Obs.incr o "runtime.cache_misses";
    Obs.incr o ~by:bits "runtime.bits_decoded";
    Obs.incr o ~by:steps "runtime.model_steps";
    Obs.incr o ~by:!pos "runtime.words_materialised";
    if st.last_decomp_end >= 0 then
      Obs.observe o "runtime.decomp_interarrival_cycles" (now - st.last_decomp_end);
    st.last_decomp_end <- now

let in_stub_area st addr =
  addr >= st.sq.Rewrite.stub_base
  && addr < st.sq.Rewrite.stub_base + (16 * st.sq.Rewrite.max_stubs)

(* Decompressor entry for return-address register [r]; [push_form] marks the
   entry used by 3-word stubs that saved the caller's ra below sp. *)
let decomp_hook st ~r ~push_form vm =
  let tag_addr = Vm.reg vm r in
  let tag = Vm.load_word vm tag_addr in
  let rid = tag lsr 16 and off = tag land 0xFFFF in
  if rid >= Array.length st.sq.Rewrite.images then
    raise (Vm.Trap { pc = Vm.pc vm; reason = "decompressor: bad region tag" });
  if in_stub_area st tag_addr then begin
    (* Invoked through a restore stub: release one reference. *)
    let slot = (tag_addr - 4 - st.sq.Rewrite.stub_base) / 16 in
    let s = st.slots.(slot) in
    if s.count > 0 then begin
      s.count <- s.count - 1;
      Vm.store_word vm (stub_addr st slot + 8) s.count;
      if s.count = 0 then begin
        Hashtbl.remove st.by_key s.key;
        st.region_refs.(fst s.key) <- st.region_refs.(fst s.key) - 1;
        st.stats.stub_frees <- st.stats.stub_frees + 1;
        st.stats.live_stubs <- st.stats.live_stubs - 1;
        match st.obs with
        | None -> ()
        | Some o ->
          let now = Vm.cycles vm in
          Obs.event o
            { ts = Obs.Event.Cycles now;
              payload =
                Obs.Event.Stub_free
                  { region = fst s.key; ret = snd s.key; live = st.stats.live_stubs } };
          Obs.incr o "runtime.stub_frees";
          Obs.observe o "runtime.stub_lifetime_cycles" (now - st.stub_born.(slot))
      end
    end
  end;
  if push_form then begin
    (* The stub stored the original ra just below the stack pointer. *)
    let saved = Vm.load_word vm (Vm.reg vm Reg.sp - 4) in
    Vm.set_reg vm Reg.ra saved
  end;
  let slot =
    match st.region_slot.(rid) with
    | slot when slot >= 0 ->
      (* Resident-region fast path: the tagged region is already
         materialised and still valid (buffer slots are only written by
         the decompressor), so re-entry pays a flat dispatch cost instead
         of a full decode. *)
      st.stats.cache_hits <- st.stats.cache_hits + 1;
      st.stats.per_region_cycles.(rid) <-
        st.stats.per_region_cycles.(rid) + st.cost.Cost.decomp_cache_hit;
      Vm.add_cycles vm st.cost.Cost.decomp_cache_hit;
      (match st.obs with None -> () | Some o -> Obs.incr o "runtime.cache_hits");
      slot
    | _ ->
      let slot = pick_slot st vm in
      decompress st vm rid ~slot;
      slot
  in
  touch st slot;
  let dest = slot_base st slot + (4 * off) in
  Vm.set_pc vm dest;
  match st.obs with
  | None -> ()
  | Some o ->
    Obs.event o
      { ts = Obs.Event.Cycles (Vm.cycles vm);
        payload = Obs.Event.Buffer_enter { region = rid; offset = off; pc = dest } }

(* CreateStub entry for return-address register [r] (paper, Fig. 2): called
   from the buffer just before an outgoing call; redirects the call's return
   address to a (new or reference-bumped) restore stub.  The calling region
   is recovered from the return address: it must land inside a live cache
   slot, and that slot's base yields the slot-relative resume offset the
   stub tag carries. *)
let create_stub_hook st ~r vm =
  let ret = Vm.reg vm r in
  let bw = st.sq.Rewrite.buffer_words in
  let cslot =
    if bw <= 0 then -1 else (ret - st.sq.Rewrite.buffer_base) / (4 * bw)
  in
  if
    ret < st.sq.Rewrite.buffer_base
    || cslot >= Array.length st.cache
    || cslot < 0
    || st.cache.(cslot).rid < 0
  then
    raise
      (Vm.Trap { pc = Vm.pc vm; reason = "createstub: return address outside a live slot" });
  let region = st.cache.(cslot).rid in
  (* ret points at the br/jmp word following the bsr in the buffer. *)
  let resume_off = ((ret - slot_base st cslot) / 4) + 1 in
  let key = (region, resume_off) in
  let slot =
    match Hashtbl.find_opt st.by_key key with
    | Some slot ->
      let s = st.slots.(slot) in
      s.count <- s.count + 1;
      Vm.store_word vm (stub_addr st slot + 8) s.count;
      st.stats.stub_reuses <- st.stats.stub_reuses + 1;
      (match st.obs with
      | None -> ()
      | Some o ->
        Obs.event o
          { ts = Obs.Event.Cycles (Vm.cycles vm);
            payload =
              Obs.Event.Stub_reuse { region; ret; live = st.stats.live_stubs } };
        Obs.incr o "runtime.stub_reuses");
      slot
    | None ->
      let slot =
        let rec find i =
          if i >= Array.length st.slots then
            raise
              (Vm.Trap { pc = Vm.pc vm; reason = "createstub: stub area exhausted" })
          else if st.slots.(i).count = 0 then i
          else find (i + 1)
        in
        find 0
      in
      let s = st.slots.(slot) in
      s.key <- key;
      s.count <- 1;
      Hashtbl.replace st.by_key key slot;
      let base = stub_addr st slot in
      let bsr_disp = (Rewrite.decomp_entry st.sq r - (base + 4)) asr 2 in
      Vm.store_word vm base (Instr.encode (Instr.Bsr { ra = r; disp = bsr_disp }));
      if region > 0xFFFF || resume_off > 0xFFFF then
        raise (Vm.Trap { pc = Vm.pc vm; reason = "createstub: tag overflow" });
      Vm.store_word vm (base + 4) ((region lsl 16) lor resume_off);
      Vm.store_word vm (base + 8) 1;
      Vm.store_word vm (base + 12) (ret land Word.mask);
      st.region_refs.(region) <- st.region_refs.(region) + 1;
      st.stats.stub_creates <- st.stats.stub_creates + 1;
      st.stats.live_stubs <- st.stats.live_stubs + 1;
      if st.stats.live_stubs > st.stats.max_live_stubs then
        st.stats.max_live_stubs <- st.stats.live_stubs;
      (match st.obs with
      | None -> ()
      | Some o ->
        let now = Vm.cycles vm in
        st.stub_born.(slot) <- now;
        Obs.event o
          { ts = Obs.Event.Cycles now;
            payload =
              Obs.Event.Stub_create { region; ret; live = st.stats.live_stubs } };
        Obs.incr o "runtime.stub_creates";
        Obs.max_gauge o "runtime.max_live_stubs" st.stats.live_stubs);
      slot
  in
  Vm.set_reg vm r (stub_addr st slot);
  Vm.add_cycles vm st.cost.Cost.stub_invoke;
  Vm.set_pc vm ret

let launch ?(cost = Cost.default) ?fuel ?obs ?profile ?(slots = 1) (sq : Rewrite.t)
    ~input =
  if slots < 1 then invalid_arg "Runtime.launch: slots must be >= 1";
  let nregions = Array.length sq.Rewrite.images in
  if sq.Rewrite.buffer_base + (4 * sq.Rewrite.buffer_words * slots) > Layout.data_base
  then invalid_arg "Runtime.launch: cache slots overflow the buffer area";
  (* Assemble the loadable text: the Easm image, plus the offset table and
     blob words at blob_base.  Both live inside one flat array starting at
     text_base (the gap is zero words). *)
  let text_words = sq.Rewrite.text.Easm.words in
  let text_end = Layout.text_base + (4 * Array.length text_words) in
  if text_end > Rewrite.blob_base then failwith "Runtime.launch: text overflows into blob";
  let blob_word_count = ((String.length sq.Rewrite.blob + 3) / 4) + nregions in
  let total_words = ((Rewrite.blob_base - Layout.text_base) / 4) + blob_word_count in
  let flat = Array.make total_words 0 in
  Array.blit text_words 0 flat 0 (Array.length text_words);
  let blob_idx = (Rewrite.blob_base - Layout.text_base) / 4 in
  Array.iteri (fun i off -> flat.(blob_idx + i) <- off) sq.Rewrite.blob_offsets;
  String.iteri
    (fun i c ->
      let w = blob_idx + nregions + (i / 4) in
      flat.(w) <- flat.(w) lor (Char.code c lsl (8 * (i land 3))))
    sq.Rewrite.blob;
  let vm =
    Vm.create ~cost ?fuel ?profile ~text_base:Layout.text_base ~text:flat
      ~entry:sq.Rewrite.entry_addr ~data_base:Layout.data_base
      ~data_words:sq.Rewrite.prog.Prog.data_words
      ~data_init:sq.Rewrite.prog.Prog.data_init ~input ()
  in
  let stats =
    {
      decompressions = 0;
      bits_decoded = 0;
      model_steps = 0;
      words_materialised = 0;
      cache_hits = 0;
      cache_evictions = 0;
      stub_creates = 0;
      stub_reuses = 0;
      stub_frees = 0;
      live_stubs = 0;
      max_live_stubs = 0;
      per_region = Array.make (max 1 nregions) 0;
      per_region_cycles = Array.make (max 1 nregions) 0;
    }
  in
  let st =
    {
      sq;
      cost;
      stats;
      slots = Array.init sq.Rewrite.max_stubs (fun _ -> { key = (-1, -1); count = 0 });
      by_key = Hashtbl.create 16;
      cache = Array.init slots (fun _ -> { rid = -1; stamp = 0 });
      region_slot = Array.make (max 1 nregions) (-1);
      region_refs = Array.make (max 1 nregions) 0;
      tick = 0;
      obs;
      stub_born = Array.make (max 1 sq.Rewrite.max_stubs) 0;
      last_decomp_end = -1;
    }
  in
  (match obs with None -> () | Some o -> Vm.set_obs vm o);
  for r = 0 to Reg.count - 1 do
    Vm.install_hook vm ~addr:(Rewrite.decomp_entry sq r)
      (decomp_hook st ~r ~push_form:false);
    Vm.install_hook vm ~addr:(Rewrite.create_stub_entry sq r) (create_stub_hook st ~r)
  done;
  Vm.install_hook vm ~addr:(Rewrite.decomp_entry_push sq)
    (decomp_hook st ~r:Reg.ra ~push_form:true);
  (vm, stats)

let run ?cost ?fuel ?obs ?slots sq ~input =
  let vm, stats = launch ?cost ?fuel ?obs ?slots sq ~input in
  (Vm.run vm, stats)
