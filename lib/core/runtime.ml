type stats = {
  mutable decompressions : int;
  mutable bits_decoded : int;
  mutable model_steps : int;
  mutable words_materialised : int;
  mutable stub_creates : int;
  mutable stub_reuses : int;
  mutable stub_frees : int;
  mutable live_stubs : int;
  mutable max_live_stubs : int;
  per_region : int array;
  per_region_cycles : int array;
}

let stats_to_json (s : stats) =
  let open Report.Json in
  let ints arr = List (Array.to_list (Array.map (fun v -> Int v) arr)) in
  Obj
    [
      ("decompressions", Int s.decompressions);
      ("bits_decoded", Int s.bits_decoded);
      ("model_steps", Int s.model_steps);
      ("words_materialised", Int s.words_materialised);
      ("stub_creates", Int s.stub_creates);
      ("stub_reuses", Int s.stub_reuses);
      ("stub_frees", Int s.stub_frees);
      ("live_stubs", Int s.live_stubs);
      ("max_live_stubs", Int s.max_live_stubs);
      ("per_region", ints s.per_region);
      ("per_region_cycles", ints s.per_region_cycles);
    ]

(* Replay end-of-run aggregates into a metrics registry.  Used when the
   run itself happened elsewhere (e.g. a cached timing result) so live
   events never fired; deterministic for a given stats value. *)
let observe_stats (o : Obs.t) (s : stats) =
  Obs.incr o ~by:s.decompressions "runtime.decompressions";
  Obs.incr o ~by:s.bits_decoded "runtime.bits_decoded";
  Obs.incr o ~by:s.model_steps "runtime.model_steps";
  Obs.incr o ~by:s.words_materialised "runtime.words_materialised";
  Obs.incr o ~by:s.stub_creates "runtime.stub_creates";
  Obs.incr o ~by:s.stub_reuses "runtime.stub_reuses";
  Obs.incr o ~by:s.stub_frees "runtime.stub_frees";
  Obs.max_gauge o "runtime.max_live_stubs" s.max_live_stubs;
  Array.iter
    (fun n -> if n > 0 then Obs.observe o "runtime.region_redecompressions" n)
    s.per_region

type stub_slot = { mutable key : int * int; mutable count : int }
(* key = (region id, return address); count = 0 means free *)

type state = {
  sq : Rewrite.t;
  cost : Cost.model;
  stats : stats;
  slots : stub_slot array;
  by_key : (int * int, int) Hashtbl.t;  (* key -> slot index *)
  mutable current_region : int;  (* region currently in the buffer; -1 if none *)
  obs : Obs.t option;
  stub_born : int array;  (* cycle stamp when the slot last became live *)
  mutable last_decomp_end : int;  (* cycle stamp of the previous decompression *)
}

let stub_addr st slot = st.sq.Rewrite.stub_base + (16 * slot)

(* Materialise region [rid] into the runtime buffer and charge cycles. *)
let decompress st vm rid =
  let sq = st.sq in
  let offsets = sq.Rewrite.blob_offsets in
  let bit_end =
    if rid + 1 < Array.length offsets then Some offsets.(rid + 1) else None
  in
  (match st.obs with
  | None -> ()
  | Some o ->
    Obs.event o
      { ts = Obs.Event.Cycles (Vm.cycles vm);
        payload = Obs.Event.Decomp_begin { region = rid } });
  let instrs, { Compress.bits; steps } =
    Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
      ~bit_offset:offsets.(rid) ?bit_end ()
  in
  let pos = ref 0 in
  let put w =
    Vm.store_word vm (sq.Rewrite.buffer_base + (4 * !pos)) w;
    incr pos
  in
  let pc_rel_to target =
    (* Displacement for an instruction being placed at position !pos. *)
    (target - (sq.Rewrite.buffer_base + (4 * (!pos + 1)))) asr 2
  in
  List.iter
    (fun ins ->
      match ins with
      | Instr.Bsrx { ra; disp } ->
        (* Expand: bsr ra, CreateStub(ra) ; br zero, disp. *)
        put
          (Instr.encode
             (Instr.Bsr { ra; disp = pc_rel_to (Rewrite.create_stub_entry sq ra) }));
        put (Instr.encode (Instr.Br { ra = Reg.zero; disp }))
      | Instr.Jsr { ra; rb; hint = 1 } ->
        put
          (Instr.encode
             (Instr.Bsr { ra; disp = pc_rel_to (Rewrite.create_stub_entry sq ra) }));
        put (Instr.encode (Instr.Jmp { ra = Reg.zero; rb; hint = 0 }))
      | ins -> put (Instr.encode ins))
    instrs;
  st.current_region <- rid;
  st.stats.decompressions <- st.stats.decompressions + 1;
  st.stats.bits_decoded <- st.stats.bits_decoded + bits;
  st.stats.model_steps <- st.stats.model_steps + steps;
  st.stats.words_materialised <- st.stats.words_materialised + !pos;
  st.stats.per_region.(rid) <- st.stats.per_region.(rid) + 1;
  let charged =
    st.cost.Cost.decomp_invoke
    + (bits * st.cost.Cost.decomp_per_bit)
    + (steps * st.cost.Cost.decomp_per_step)
    + (!pos * st.cost.Cost.decomp_per_instr)
    + st.cost.Cost.icache_flush
  in
  st.stats.per_region_cycles.(rid) <- st.stats.per_region_cycles.(rid) + charged;
  Vm.add_cycles vm charged;
  match st.obs with
  | None -> ()
  | Some o ->
    let now = Vm.cycles vm in
    Obs.event o
      { ts = Obs.Event.Cycles now;
        payload =
          Obs.Event.Decomp_end { region = rid; bits; words = !pos; cycles = charged } };
    Obs.incr o "runtime.decompressions";
    Obs.incr o ~by:bits "runtime.bits_decoded";
    Obs.incr o ~by:steps "runtime.model_steps";
    Obs.incr o ~by:!pos "runtime.words_materialised";
    if st.last_decomp_end >= 0 then
      Obs.observe o "runtime.decomp_interarrival_cycles" (now - st.last_decomp_end);
    st.last_decomp_end <- now

let in_stub_area st addr =
  addr >= st.sq.Rewrite.stub_base
  && addr < st.sq.Rewrite.stub_base + (16 * st.sq.Rewrite.max_stubs)

(* Decompressor entry for return-address register [r]; [push_form] marks the
   entry used by 3-word stubs that saved the caller's ra below sp. *)
let decomp_hook st ~r ~push_form vm =
  let tag_addr = Vm.reg vm r in
  let tag = Vm.load_word vm tag_addr in
  let rid = tag lsr 16 and off = tag land 0xFFFF in
  if rid >= Array.length st.sq.Rewrite.images then
    raise (Vm.Trap { pc = Vm.pc vm; reason = "decompressor: bad region tag" });
  if in_stub_area st tag_addr then begin
    (* Invoked through a restore stub: release one reference. *)
    let slot = (tag_addr - 4 - st.sq.Rewrite.stub_base) / 16 in
    let s = st.slots.(slot) in
    if s.count > 0 then begin
      s.count <- s.count - 1;
      Vm.store_word vm (stub_addr st slot + 8) s.count;
      if s.count = 0 then begin
        Hashtbl.remove st.by_key s.key;
        st.stats.stub_frees <- st.stats.stub_frees + 1;
        st.stats.live_stubs <- st.stats.live_stubs - 1;
        match st.obs with
        | None -> ()
        | Some o ->
          let now = Vm.cycles vm in
          Obs.event o
            { ts = Obs.Event.Cycles now;
              payload =
                Obs.Event.Stub_free
                  { region = fst s.key; ret = snd s.key; live = st.stats.live_stubs } };
          Obs.incr o "runtime.stub_frees";
          Obs.observe o "runtime.stub_lifetime_cycles" (now - st.stub_born.(slot))
      end
    end
  end;
  if push_form then begin
    (* The stub stored the original ra just below the stack pointer. *)
    let saved = Vm.load_word vm (Vm.reg vm Reg.sp - 4) in
    Vm.set_reg vm Reg.ra saved
  end;
  decompress st vm rid;
  let dest = st.sq.Rewrite.buffer_base + (4 * off) in
  Vm.set_pc vm dest;
  match st.obs with
  | None -> ()
  | Some o ->
    Obs.event o
      { ts = Obs.Event.Cycles (Vm.cycles vm);
        payload = Obs.Event.Buffer_enter { region = rid; offset = off; pc = dest } }

(* CreateStub entry for return-address register [r] (paper, Fig. 2): called
   from the buffer just before an outgoing call; redirects the call's return
   address to a (new or reference-bumped) restore stub. *)
let create_stub_hook st ~r vm =
  let ret = Vm.reg vm r in
  (* ret points at the br/jmp word following the bsr in the buffer. *)
  let resume_off = ((ret - st.sq.Rewrite.buffer_base) / 4) + 1 in
  let key = (st.current_region, ret) in
  let slot =
    match Hashtbl.find_opt st.by_key key with
    | Some slot ->
      let s = st.slots.(slot) in
      s.count <- s.count + 1;
      Vm.store_word vm (stub_addr st slot + 8) s.count;
      st.stats.stub_reuses <- st.stats.stub_reuses + 1;
      (match st.obs with
      | None -> ()
      | Some o ->
        Obs.event o
          { ts = Obs.Event.Cycles (Vm.cycles vm);
            payload =
              Obs.Event.Stub_reuse
                { region = st.current_region; ret; live = st.stats.live_stubs } };
        Obs.incr o "runtime.stub_reuses");
      slot
    | None ->
      let slot =
        let rec find i =
          if i >= Array.length st.slots then
            raise
              (Vm.Trap { pc = Vm.pc vm; reason = "createstub: stub area exhausted" })
          else if st.slots.(i).count = 0 then i
          else find (i + 1)
        in
        find 0
      in
      let s = st.slots.(slot) in
      s.key <- key;
      s.count <- 1;
      Hashtbl.replace st.by_key key slot;
      let base = stub_addr st slot in
      let bsr_disp = (Rewrite.decomp_entry st.sq r - (base + 4)) asr 2 in
      Vm.store_word vm base (Instr.encode (Instr.Bsr { ra = r; disp = bsr_disp }));
      if st.current_region > 0xFFFF || resume_off > 0xFFFF then
        raise (Vm.Trap { pc = Vm.pc vm; reason = "createstub: tag overflow" });
      Vm.store_word vm (base + 4) ((st.current_region lsl 16) lor resume_off);
      Vm.store_word vm (base + 8) 1;
      Vm.store_word vm (base + 12) (ret land Word.mask);
      st.stats.stub_creates <- st.stats.stub_creates + 1;
      st.stats.live_stubs <- st.stats.live_stubs + 1;
      if st.stats.live_stubs > st.stats.max_live_stubs then
        st.stats.max_live_stubs <- st.stats.live_stubs;
      (match st.obs with
      | None -> ()
      | Some o ->
        let now = Vm.cycles vm in
        st.stub_born.(slot) <- now;
        Obs.event o
          { ts = Obs.Event.Cycles now;
            payload =
              Obs.Event.Stub_create
                { region = st.current_region; ret; live = st.stats.live_stubs } };
        Obs.incr o "runtime.stub_creates";
        Obs.max_gauge o "runtime.max_live_stubs" st.stats.live_stubs);
      slot
  in
  Vm.set_reg vm r (stub_addr st slot);
  (* CreateStub itself is short; charge a flat handful of cycles. *)
  Vm.add_cycles vm 20;
  Vm.set_pc vm ret

let launch ?(cost = Cost.default) ?fuel ?obs (sq : Rewrite.t) ~input =
  let nregions = Array.length sq.Rewrite.images in
  (* Assemble the loadable text: the Easm image, plus the offset table and
     blob words at blob_base.  Both live inside one flat array starting at
     text_base (the gap is zero words). *)
  let text_words = sq.Rewrite.text.Easm.words in
  let text_end = Layout.text_base + (4 * Array.length text_words) in
  if text_end > Rewrite.blob_base then failwith "Runtime.launch: text overflows into blob";
  let blob_word_count = ((String.length sq.Rewrite.blob + 3) / 4) + nregions in
  let total_words = ((Rewrite.blob_base - Layout.text_base) / 4) + blob_word_count in
  let flat = Array.make total_words 0 in
  Array.blit text_words 0 flat 0 (Array.length text_words);
  let blob_idx = (Rewrite.blob_base - Layout.text_base) / 4 in
  Array.iteri (fun i off -> flat.(blob_idx + i) <- off) sq.Rewrite.blob_offsets;
  String.iteri
    (fun i c ->
      let w = blob_idx + nregions + (i / 4) in
      flat.(w) <- flat.(w) lor (Char.code c lsl (8 * (i land 3))))
    sq.Rewrite.blob;
  let vm =
    Vm.create ~cost ?fuel ~text_base:Layout.text_base ~text:flat
      ~entry:sq.Rewrite.entry_addr ~data_base:Layout.data_base
      ~data_words:sq.Rewrite.prog.Prog.data_words
      ~data_init:sq.Rewrite.prog.Prog.data_init ~input ()
  in
  let stats =
    {
      decompressions = 0;
      bits_decoded = 0;
      model_steps = 0;
      words_materialised = 0;
      stub_creates = 0;
      stub_reuses = 0;
      stub_frees = 0;
      live_stubs = 0;
      max_live_stubs = 0;
      per_region = Array.make (max 1 nregions) 0;
      per_region_cycles = Array.make (max 1 nregions) 0;
    }
  in
  let st =
    {
      sq;
      cost;
      stats;
      slots = Array.init sq.Rewrite.max_stubs (fun _ -> { key = (-1, -1); count = 0 });
      by_key = Hashtbl.create 16;
      current_region = -1;
      obs;
      stub_born = Array.make (max 1 sq.Rewrite.max_stubs) 0;
      last_decomp_end = -1;
    }
  in
  (match obs with None -> () | Some o -> Vm.set_obs vm o);
  for r = 0 to Reg.count - 1 do
    Vm.install_hook vm ~addr:(Rewrite.decomp_entry sq r)
      (decomp_hook st ~r ~push_form:false);
    Vm.install_hook vm ~addr:(Rewrite.create_stub_entry sq r) (create_stub_hook st ~r)
  done;
  Vm.install_hook vm ~addr:(Rewrite.decomp_entry_push sq)
    (decomp_hook st ~r:Reg.ra ~push_form:true);
  (vm, stats)

let run ?cost ?fuel ?obs sq ~input =
  let vm, stats = launch ?cost ?fuel ?obs sq ~input in
  (Vm.run vm, stats)
