type t = (string, bool) Hashtbl.t  (* name -> is buffer-safe *)

(* Iterative marking: seed non-safety, then propagate it from callees to
   callers until a fixed point. *)
let propagate (p : Prog.t) ~seed_unsafe ~callees_of =
  let safe : t = Hashtbl.create 64 in
  List.iter
    (fun (f : Prog.Func.t) -> Hashtbl.replace safe f.name (not (seed_unsafe f.name)))
    p.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Prog.Func.t) ->
        if Hashtbl.find safe f.name then
          let unsafe_callee =
            List.exists
              (fun g -> not (Option.value ~default:false (Hashtbl.find_opt safe g)))
              (callees_of f.name)
          in
          if unsafe_callee then begin
            Hashtbl.replace safe f.name false;
            changed := true
          end)
      p.funcs
  done;
  safe

let analyze (p : Prog.t) ~has_compressed =
  let cg = Cfg.Callgraph.of_prog p in
  propagate p
    ~seed_unsafe:(fun f ->
      has_compressed f || Cfg.Callgraph.has_indirect_call cg f)
    ~callees_of:(Cfg.Callgraph.callees cg)

let analyze_sharp (p : Prog.t) ~has_compressed =
  let cg = Cfg.Callgraph.of_prog p in
  Consts.annotate_callgraph p cg;
  (* An indirect call no longer poisons its containing function outright:
     it contributes its resolved candidate set (the exact target when the
     address propagation proves one, the address-taken set otherwise) as
     ordinary callee edges.  A function is then unsafe only if it has
     compressed blocks or reaches one that does. *)
  propagate p ~seed_unsafe:has_compressed ~callees_of:(fun f ->
      Cfg.Callgraph.callees cg f @ Cfg.Callgraph.indirect_callees cg f)

let is_safe t name = Option.value ~default:false (Hashtbl.find_opt t name)

let safe_functions t =
  Hashtbl.fold (fun name ok acc -> if ok then name :: acc else acc) t []
  |> List.sort String.compare

let stats (p : Prog.t) t ~in_region =
  let safe_calls = ref 0 and direct = ref 0 and indirect = ref 0 in
  List.iter
    (fun (f : Prog.Func.t) ->
      Array.iteri
        (fun i (b : Prog.Block.t) ->
          if in_region f.name i then
            match b.term with
            | Prog.Call { callee; _ } ->
              incr direct;
              if is_safe t callee then incr safe_calls
            | Prog.Call_indirect _ -> incr indirect
            | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _ | Prog.Jump_indirect _
            | Prog.Return _ | Prog.No_return ->
              ())
        f.blocks)
    p.funcs;
  (`Safe_calls !safe_calls, `Direct_calls !direct, `Indirect_calls !indirect)
