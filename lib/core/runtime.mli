(** The squash runtime: the software decompressor and the restore-stub
    machinery (paper, Sections 2.2–2.3), mounted into a {!Vm.t} as
    intrinsics at the decompressor's entry addresses.

    The engine performs the real work against simulated memory — canonical
    Huffman decoding from the compressed bitstream, materialising
    instruction words into the runtime buffer (which invalidates the VM's
    decode cache, standing in for the instruction-cache flush), creating
    and reference-counting restore stubs in the stub area — and charges
    simulated cycles derived from that work via the {!Cost.model}:
    [decomp_invoke + bits·decomp_per_bit + steps·decomp_per_step +
    words·decomp_per_instr + icache_flush] per decompression, where the
    bits and model steps come from the coder's {!Compress.work} report. *)

type stats = {
  mutable decompressions : int;
  mutable bits_decoded : int;
  mutable model_steps : int;
      (** Coder model steps beyond bit consumption (MTF walks,
          context-table selections, LZSS copy steps). *)
  mutable words_materialised : int;
  mutable stub_creates : int;
  mutable stub_reuses : int;
  mutable stub_frees : int;
  mutable live_stubs : int;
  mutable max_live_stubs : int;  (** Paper: at most 9 at θ = 0.01. *)
  per_region : int array;  (** Decompression count per region. *)
  per_region_cycles : int array;
      (** Simulated cycles charged for decompressing each region (sums to
          the total runtime-overhead cycles attributable to the
          decompressor). *)
}

val stats_to_json : stats -> Report.Json.t
(** One JSON object with every scalar field plus [per_region] /
    [per_region_cycles] arrays — the single serialisation used by
    [squashc] and the bench harness. *)

val observe_stats : Obs.t -> stats -> unit
(** Replay end-of-run aggregates into a metrics registry (counters, the
    [runtime.max_live_stubs] gauge, the region re-decompression
    histogram).  For runs that happened elsewhere — e.g. a cached timing
    result — where live events never fired. *)

val launch :
  ?cost:Cost.model -> ?fuel:int -> ?obs:Obs.t -> Rewrite.t -> input:string -> Vm.t * stats
(** Create a VM loaded with the squashed image (text, offset table,
    compressed blob, stub area, buffer) and hook the runtime in.  With
    [obs], the runtime emits decompression begin/end, buffer-entry and
    stub create/reuse/free events (timestamped in simulated cycles) and
    bumps the [runtime.*] metrics; without it the only overhead is one
    branch per instrumented site, and the outcome is byte-identical. *)

val run :
  ?cost:Cost.model -> ?fuel:int -> ?obs:Obs.t -> Rewrite.t -> input:string ->
  Vm.outcome * stats
(** [launch] then {!Vm.run}. *)
