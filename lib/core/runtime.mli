(** The squash runtime: the software decompressor and the restore-stub
    machinery (paper, Sections 2.2–2.3), mounted into a {!Vm.t} as
    intrinsics at the decompressor's entry addresses.

    The engine performs the real work against simulated memory — canonical
    Huffman decoding from the compressed bitstream, materialising
    instruction words into a runtime buffer slot (which invalidates the
    VM's decode cache, standing in for the instruction-cache flush),
    creating and reference-counting restore stubs in the stub area — and
    charges simulated cycles derived from that work via the {!Cost.model}:
    [decomp_invoke + bits·decomp_per_bit + steps·decomp_per_step +
    words·decomp_per_instr + icache_flush] per decompression, where the
    bits and model steps come from the coder's {!Compress.work} report.

    The buffer is a {e cache} of [slots] decompressed-region slots (paper:
    one).  A decompressor entry whose region is already resident jumps
    straight back into the buffer for a flat [decomp_cache_hit] charge;
    otherwise the least-recently-used slot is evicted (slots whose region
    holds live restore stubs are evicted last) and the region is
    materialised into it.  Stub resume tags carry (region, slot-relative
    offset) pairs resolved through the residency map at re-entry, so a
    region may move between slots — or be evicted entirely — without
    invalidating any live stub. *)

type stats = {
  mutable decompressions : int;
  mutable bits_decoded : int;
  mutable model_steps : int;
      (** Coder model steps: decode-table probes plus work beyond bit
          consumption (MTF walks, context-table selections, LZSS copy
          steps). *)
  mutable words_materialised : int;
  mutable cache_hits : int;
      (** Decompressor entries that found their region already resident in
          a buffer slot (each one is a decompression avoided; misses equal
          [decompressions]). *)
  mutable cache_evictions : int;
      (** Resident regions displaced to make room for another
          materialisation (always 0 when every live region fits the slot
          count). *)
  mutable stub_creates : int;
  mutable stub_reuses : int;
  mutable stub_frees : int;
  mutable live_stubs : int;
  mutable max_live_stubs : int;  (** Paper: at most 9 at θ = 0.01. *)
  per_region : int array;  (** Decompression count per region. *)
  per_region_cycles : int array;
      (** Simulated cycles charged for decompressing each region,
          including the flat re-entry charges of its cache hits (sums to
          the total runtime-overhead cycles attributable to the
          decompressor). *)
}

val stats_to_json : stats -> Report.Json.t
(** One JSON object with every scalar field plus [per_region] /
    [per_region_cycles] arrays — the single serialisation used by
    [squashc] and the bench harness. *)

val observe_stats : Obs.t -> stats -> unit
(** Replay end-of-run aggregates into a metrics registry (counters
    including [runtime.cache_hits] / [runtime.cache_misses] /
    [runtime.cache_evictions], the [runtime.max_live_stubs] gauge, the
    region re-decompression histogram).  For runs that happened elsewhere
    — e.g. a cached timing result — where live events never fired. *)

val launch :
  ?cost:Cost.model ->
  ?fuel:int ->
  ?obs:Obs.t ->
  ?profile:bool ->
  ?slots:int ->
  Rewrite.t ->
  input:string ->
  Vm.t * stats
(** Create a VM loaded with the squashed image (text, offset table,
    compressed blob, stub area, buffer slots) and hook the runtime in.
    With [~profile:true] the VM counts per-word executions of the whole
    flat image — [Exp_data.reprofile_squashed] maps them back to source
    blocks through the rewrite's owner array (buffer executions fall
    outside the counted text, mirroring a real sampled-PC profiler that
    cannot attribute scratch-buffer PCs).
    [slots] (default 1) is the number of decompressed-region cache slots;
    slot [s] occupies [buffer_base + 4·buffer_words·s].  With [obs], the
    runtime emits decompression begin/end, buffer-entry, cache-evict and
    stub create/reuse/free events (timestamped in simulated cycles) and
    bumps the [runtime.*] metrics; without it the only overhead is one
    branch per instrumented site, and the outcome is byte-identical.
    @raise Invalid_argument if [slots < 1] or the slot array would overrun
    the buffer area (which ends at the data segment). *)

val run :
  ?cost:Cost.model ->
  ?fuel:int ->
  ?obs:Obs.t ->
  ?slots:int ->
  Rewrite.t ->
  input:string ->
  Vm.outcome * stats
(** [launch] then {!Vm.run}. *)
