(* Byte-oriented LZSS over each region's encoded instruction words — the
   "other algorithms" of the paper's future-work section, kept as the
   non-Huffman point of the coder ablation.  The model is empty: LZSS
   ships no tables. *)

module M = struct
  type model = unit

  let name = "lzss"
  let build _regions = ()

  let encode_regions () regions =
    let blob = Buffer.create 4096 in
    let offsets =
      Array.map
        (fun instrs ->
          let off = 8 * Buffer.length blob in
          Buffer.add_string blob (Lzss.compress (Coder.region_bytes instrs));
          off)
        regions
    in
    (Buffer.contents blob, offsets)

  let decode_region () blob ~bit_offset ~bit_end =
    if bit_offset land 7 <> 0 || bit_end land 7 <> 0 then
      failwith "Coder_lzss.decode_region: offsets must be byte-aligned";
    let lo = bit_offset / 8 and hi = bit_end / 8 in
    if lo > hi || hi > String.length blob then
      failwith "Coder_lzss.decode_region: bad slice";
    let bytes, steps = Lzss.decompress (String.sub blob lo (hi - lo)) in
    if String.length bytes mod 4 <> 0 then
      raise (Bitio.Corrupt_stream "Coder_lzss.decode_region: output not word-aligned");
    let nwords = String.length bytes / 4 in
    let rec go i acc =
      if i >= nwords then
        raise (Bitio.Corrupt_stream "Coder_lzss.decode_region: missing sentinel")
      else begin
        let byte j = Char.code bytes.[(4 * i) + j] in
        let w = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
        match Instr.decode w with
        | Error msg -> raise (Bitio.Corrupt_stream ("Coder_lzss.decode_region: " ^ msg))
        | Ok Instr.Sentinel -> List.rev acc
        | Ok ins -> go (i + 1) (ins :: acc)
      end
    in
    (go 0 [], { Coder.bits = 8 * (hi - lo); steps })

  let table_bits () = 0
  let stream_stats () = []
  let stream_bits () _regions = []
end
