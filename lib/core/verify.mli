(** Whole-image static verification of a squashed executable
    ([squashc lint]).

    {!Check.check} validates the mechanical structure of the image (stream
    round-trips, offset tables, footprint sums).  This module proves the
    {e semantic} invariants the rewrite relies on, without executing
    anything, and reports violations as typed diagnostics:

    - {b stubs} ({!Bad_stub}): every entry stub decodes to the 2- or
      3-word form, its [bsr] targets the decompressor entry matching its
      return-address register, and its tag names a real region and the
      correct instruction-boundary offset of its block in that region's
      image.
    - {b transfers} ({!Dangling_transfer}): no surviving branch,
      fall-through, call, jump-table entry or materialised code address
      targets the {e interior} of a removed region — every such target is
      either never-compressed code or a region entry (which is where the
      stub lives).  Intra-region edges and calls to a callee wholly inside
      the same region are exempt, exactly mirroring the rewrite's plan.
    - {b stub registers} ({!Live_stub_reg}): the return-address register
      of every 2-word stub is dead at its block's entry, per an
      independent liveness analysis ({!Dataflow.Liveness}) — deliberately
      not the {!Cfg.liveness} the rewrite itself consulted.
    - {b unchanged calls} ({!Unsafe_call}): every plain [bsr] the rewrite
      left in compressed code (the Section 6.1 optimisation) targets a
      known function entry whose callee is buffer-safe under the sharpened
      analysis ({!Buffer_safe.analyze_sharp}).  Since the sharpened safe
      set contains the conservative one, images built with either analysis
      verify.
    - {b unresolved indirection} ({!Unresolved_indirect}, warning): an
      indirect call whose candidate set is empty — no function's address
      is ever taken — cannot be verified further and would trap at run
      time.
    - {b streams} ({!Stream_mismatch}): every region's slice of the
      compressed blob decodes — under whichever coder built the image —
      back to exactly the region image's instruction stream, without
      raising and with non-negative reported work.
    - {b dead surviving code} ({!Unreachable_code}, warning): a block the
      rewrite emitted into the text (or a whole surviving function) that
      is unreachable — function-level over the callgraph with the
      {!Consts}-resolved indirect edges, block-level via a forward
      {!Dataflow} reachability client.
    - {b unproved regions} ({!Unproved_region}): not produced by {!run}
      itself — the symbolic equivalence prover ({!Prove}) reports its
      failures through this kind so they land in the same typed
      severity×kind stream. *)

type severity = Error | Warning

type kind =
  | Bad_stub
  | Dangling_transfer
  | Live_stub_reg
  | Unsafe_call
  | Unresolved_indirect
  | Stream_mismatch
  | Unreachable_code
  | Unproved_region

type diag = {
  severity : severity;
  kind : kind;
  site : string;  (** Where: ["func.b3"], ["func.table0[2]"], ["region 1 @ 7"]. *)
  region : int option;  (** Region id the diagnostic is about, if any. *)
  addr : int option;  (** Byte address in the image, when one is known. *)
  message : string;
}

val run : Rewrite.t -> diag list
(** All diagnostics, in discovery order.  Self-contained: recomputes the
    address-taken set, the sharpened buffer-safe analysis and the liveness
    facts from the image's own program and regions. *)

val errors : diag list -> diag list
(** The [Error]-severity subset ([squashc lint] exits 1 when non-empty). *)

val kind_name : kind -> string
(** Stable kebab-case name: ["bad-stub"], ["dangling-transfer"], … *)

val severity_name : severity -> string
val message : diag -> string
(** One-line rendering: ["error bad-stub @ site: …"]. *)

val render : diag list -> string
(** Aligned text table of the diagnostics. *)

val to_json : diag list -> Report.Json.t
(** [[{"severity": …, "kind": …, "site": …, "region": …, "addr": …,
    "message": …}, …]]; [region]/[addr] are [null] when unknown. *)
