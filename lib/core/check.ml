let check (sq : Rewrite.t) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let nregions = Array.length sq.Rewrite.images in

  (* --- function offset table ------------------------------------- *)
  let blob_bits = 8 * String.length sq.Rewrite.blob in
  Array.iteri
    (fun i off ->
      if off < 0 || off > blob_bits then err "region %d: offset %d outside blob" i off;
      if i > 0 && off < sq.Rewrite.blob_offsets.(i - 1) then
        err "offset table not sorted at region %d" i)
    sq.Rewrite.blob_offsets;
  if Array.length sq.Rewrite.blob_offsets <> nregions then
    err "offset table has %d entries for %d regions"
      (Array.length sq.Rewrite.blob_offsets)
      nregions;

  (* --- entry stubs ------------------------------------------------ *)
  let text = sq.Rewrite.text.Easm.words in
  let word_at addr =
    let idx = (addr - Layout.text_base) / 4 in
    if idx < 0 || idx >= Array.length text then None else Some text.(idx)
  in
  let is_decomp_entry addr ~push =
    if push then addr = Rewrite.decomp_entry_push sq
    else
      addr >= Rewrite.decomp_entry sq 0
      && addr <= Rewrite.decomp_entry sq (Reg.count - 1)
      && (addr - Rewrite.decomp_entry sq 0) land 3 = 0
  in
  let check_tag key addr =
    match word_at addr with
    | None -> err "stub for %s.%d: tag out of text" (fst key) (snd key)
    | Some tag ->
      let rid = tag lsr 16 and off = tag land 0xFFFF in
      if rid >= nregions then
        err "stub for %s.%d: tag names region %d of %d" (fst key) (snd key) rid nregions
      else begin
        let img = sq.Rewrite.images.(rid) in
        let is_block_head =
          Hashtbl.fold (fun _ o acc -> acc || o = off) img.Rewrite.block_offset false
        in
        if not is_block_head then
          err "stub for %s.%d: offset %d is not a block head of region %d" (fst key)
            (snd key) off rid;
        if Hashtbl.find_opt img.Rewrite.block_offset key <> Some off then
          err "stub for %s.%d: tag points at a different block" (fst key) (snd key)
      end
  in
  List.iter
    (fun (key, addr) ->
      match word_at addr with
      | None -> err "stub for %s.%d: address outside text" (fst key) (snd key)
      | Some w -> (
        match Instr.decode w with
        | Ok (Instr.Bsr { disp; _ }) ->
          let target = addr + 4 + (4 * disp) in
          if not (is_decomp_entry target ~push:false) then
            err "stub for %s.%d: bsr does not target a decompressor entry" (fst key)
              (snd key)
          else check_tag key (addr + 4)
        | Ok (Instr.Mem { op = Instr.Stw; rb; disp = -4; _ }) when rb = Reg.sp -> (
          (* 3-word push form. *)
          match word_at (addr + 4) with
          | Some w2 -> (
            match Instr.decode w2 with
            | Ok (Instr.Bsr { disp; _ }) ->
              let target = addr + 8 + (4 * disp) in
              if not (is_decomp_entry target ~push:true) then
                err "stub for %s.%d: push form does not target the push entry"
                  (fst key) (snd key)
              else check_tag key (addr + 8)
            | _ -> err "stub for %s.%d: push form lacks its bsr" (fst key) (snd key))
          | None -> err "stub for %s.%d: truncated push form" (fst key) (snd key))
        | Ok _ | Error _ ->
          err "stub for %s.%d: does not start with bsr or push" (fst key) (snd key)))
    sq.Rewrite.stub_addrs;

  (* --- region images and streams ---------------------------------- *)
  Array.iteri
    (fun rid (img : Rewrite.region_image) ->
      if img.Rewrite.buffer_words + 2 > sq.Rewrite.buffer_words then
        err "region %d needs %d words, buffer holds %d" rid img.Rewrite.buffer_words
          (sq.Rewrite.buffer_words - 2);
      (* The stream must round-trip. *)
      let bit_end =
        if rid + 1 < nregions then Some sq.Rewrite.blob_offsets.(rid + 1) else None
      in
      (match
         Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
           ~bit_offset:sq.Rewrite.blob_offsets.(rid) ?bit_end ()
       with
      | decoded, _ ->
        if not (List.equal Instr.equal decoded img.Rewrite.stream) then
          err "region %d: compressed stream does not decode to its image" rid
      | exception Failure msg -> err "region %d: decode failed: %s" rid msg
      | exception Bitio.Corrupt_stream msg ->
        err "region %d: decode failed: %s" rid msg);
      (* Image structure. *)
      let block_heads =
        Hashtbl.fold (fun _ o acc -> o :: acc) img.Rewrite.block_offset []
      in
      let pos = ref 0 in
      List.iter
        (fun w ->
          (match w with
          | Rewrite.Plain (Instr.Bsrx _) ->
            err "region %d: raw Bsrx marker in image at %d" rid !pos
          | Rewrite.Plain (Instr.Jsr { hint = 1; _ }) ->
            err "region %d: raw Jsr marker in image at %d" rid !pos
          | Rewrite.Plain Instr.Sentinel ->
            err "region %d: sentinel inside image at %d" rid !pos
          | Rewrite.Plain (Instr.Cbr { disp; _ } | Instr.Br { disp; _ }) ->
            (* Intra-buffer transfers must land on a block head. *)
            let target_words = !pos + 1 + disp in
            if target_words >= 0 && target_words < img.Rewrite.buffer_words then
              if not (List.mem target_words block_heads) then
                err "region %d: branch at %d targets mid-block offset %d" rid !pos
                  target_words
          | Rewrite.Plain _ | Rewrite.Expand_call _ | Rewrite.Expand_calli _ -> ());
          pos :=
            !pos
            + (match w with
              | Rewrite.Plain _ -> 1
              | Rewrite.Expand_call _ | Rewrite.Expand_calli _ -> 2))
        img.Rewrite.words;
      if !pos <> img.Rewrite.buffer_words then
        err "region %d: image words sum to %d, recorded %d" rid !pos
          img.Rewrite.buffer_words)
    sq.Rewrite.images;

  (* --- footprint consistency --------------------------------------- *)
  let parts =
    Rewrite.never_compressed_words sq + Rewrite.offset_table_words sq
    + Rewrite.blob_words sq + Rewrite.code_table_words sq
    + (sq.Rewrite.max_stubs * 4) + sq.Rewrite.buffer_words
  in
  if parts <> Rewrite.total_words sq then
    err "footprint parts sum to %d, total_words says %d" parts
      (Rewrite.total_words sq);

  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_exn sq =
  match check sq with
  | Ok () -> ()
  | Error es -> failwith ("Check.check failed:\n" ^ String.concat "\n" es)
