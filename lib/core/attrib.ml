type row = {
  rid : int;
  blocks : int;
  stream_words : int;
  buffer_words : int;
  bits : int;
  max_freq : int;
  decompressions : int;
  cycles : int;
  share : float;
  funcs : string list;
}

type t = {
  rows : row list;
  total_decompressions : int;
  total_cycles : int;
}

let compute ?profile (r : Squash.result) (stats : Runtime.stats) =
  let sq = r.Squash.squashed in
  let regions = r.Squash.regions.Regions.regions in
  let offsets = sq.Rewrite.blob_offsets in
  let blob_bits = 8 * String.length sq.Rewrite.blob in
  let total_cycles = Array.fold_left ( + ) 0 stats.Runtime.per_region_cycles in
  let rows =
    Array.to_list regions
    |> List.map (fun (reg : Regions.region) ->
           let rid = reg.Regions.id in
           let img = sq.Rewrite.images.(rid) in
           let bits =
             (if rid + 1 < Array.length offsets then offsets.(rid + 1)
              else blob_bits)
             - offsets.(rid)
           in
           let max_freq =
             match profile with
             | None -> 0
             | Some prof ->
               List.fold_left
                 (fun acc (f, b) -> max acc (Profile.freq prof f b))
                 0 reg.Regions.blocks
           in
           let funcs =
             List.fold_left
               (fun acc (f, _) -> if List.mem f acc then acc else f :: acc)
               [] reg.Regions.blocks
             |> List.rev
           in
           let decompressions =
             if rid < Array.length stats.Runtime.per_region then
               stats.Runtime.per_region.(rid)
             else 0
           in
           let cycles =
             if rid < Array.length stats.Runtime.per_region_cycles then
               stats.Runtime.per_region_cycles.(rid)
             else 0
           in
           {
             rid;
             blocks = List.length reg.Regions.blocks;
             stream_words = List.length img.Rewrite.stream;
             buffer_words = img.Rewrite.buffer_words;
             bits;
             max_freq;
             decompressions;
             cycles;
             share =
               (if total_cycles > 0 then
                  float_of_int cycles /. float_of_int total_cycles
                else 0.0);
             funcs;
           })
    |> List.sort (fun a b ->
           match compare b.cycles a.cycles with
           | 0 -> compare a.rid b.rid
           | c -> c)
  in
  { rows; total_decompressions = stats.Runtime.decompressions; total_cycles }

let funcs_cell funcs =
  let s = String.concat "," funcs in
  if String.length s <= 32 then s else String.sub s 0 29 ^ "..."

let render t =
  let tbl =
    Report.Table.create ~title:"runtime overhead attribution"
      [ ("region", Report.Table.Right); ("blocks", Report.Table.Right);
        ("words", Report.Table.Right); ("buf", Report.Table.Right);
        ("bits", Report.Table.Right); ("max freq", Report.Table.Right);
        ("decomp", Report.Table.Right); ("cycles", Report.Table.Right);
        ("cyc/decomp", Report.Table.Right); ("share", Report.Table.Right);
        ("functions", Report.Table.Left) ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row tbl
        [ string_of_int r.rid; string_of_int r.blocks;
          string_of_int r.stream_words; string_of_int r.buffer_words;
          string_of_int r.bits; string_of_int r.max_freq;
          string_of_int r.decompressions; string_of_int r.cycles;
          (if r.decompressions > 0 then
             string_of_int (r.cycles / r.decompressions)
           else "-");
          Report.Table.cell_percent ~decimals:1 r.share;
          funcs_cell r.funcs ])
    t.rows;
  Report.Table.add_separator tbl;
  Report.Table.add_row tbl
    [ "total"; ""; ""; ""; ""; ""; string_of_int t.total_decompressions;
      string_of_int t.total_cycles; ""; ""; "" ];
  Report.Table.render tbl

let to_json ?(params = []) ?run_cycles t =
  let open Report.Json in
  Obj
    ([ ("schema", String "pgcc-attrib-v1") ]
    @ (if params = [] then [] else [ ("params", Obj params) ])
    @ (match run_cycles with
      | Some c -> [ ("run_cycles", Int c) ]
      | None -> [])
    @ [ ("total_decompressions", Int t.total_decompressions);
        ("total_cycles", Int t.total_cycles);
        ( "regions",
        List
          (List.map
             (fun r ->
               Obj
                 [ ("rid", Int r.rid); ("blocks", Int r.blocks);
                   ("stream_words", Int r.stream_words);
                   ("buffer_words", Int r.buffer_words); ("bits", Int r.bits);
                   ("max_freq", Int r.max_freq);
                   ("decompressions", Int r.decompressions);
                   ("cycles", Int r.cycles); ("share", Float r.share);
                   ("funcs", List (List.map (fun f -> String f) r.funcs)) ])
             t.rows) ) ])

(* --- differential attribution ----------------------------------------- *)

(* The subset of an attribution that survives a JSON round-trip: enough to
   compare two runs region-by-region without re-running either. *)
module Saved = struct
  type row = { rid : int; decompressions : int; cycles : int; share : float }

  type t = {
    rows : row list;
    total_decompressions : int;
    total_cycles : int;
    run_cycles : int option;
        (** Total simulated cycles of the timing run, when recorded —
            enables the overhead-share-of-run comparison. *)
    params : (string * string) list;
        (** Provenance (workload, theta, ...) as printable strings. *)
  }

  let of_json doc =
    let module J = Report.Json in
    let int_field ~what j name =
      match J.member name j with
      | Some (J.Int i) -> Ok i
      | Some _ | None ->
        Error (Printf.sprintf "%s: missing integer field %S" what name)
    in
    match J.member "schema" doc with
    | Some (J.String "pgcc-attrib-v1") -> (
      let ( let* ) = Result.bind in
      let* total_decompressions =
        int_field ~what:"attrib json" doc "total_decompressions"
      in
      let* total_cycles = int_field ~what:"attrib json" doc "total_cycles" in
      let run_cycles =
        match J.member "run_cycles" doc with
        | Some (J.Int c) -> Some c
        | Some _ | None -> None
      in
      let params =
        match J.member "params" doc with
        | Some (J.Obj fields) ->
          List.filter_map
            (fun (k, v) ->
              match v with
              | J.String s -> Some (k, s)
              | J.Int i -> Some (k, string_of_int i)
              | J.Float f -> Some (k, Printf.sprintf "%g" f)
              | _ -> None)
            fields
        | Some _ | None -> []
      in
      match J.member "regions" doc with
      | Some (J.List regions) ->
        let* rows =
          List.fold_left
            (fun acc r ->
              let* acc = acc in
              let* rid = int_field ~what:"attrib region" r "rid" in
              let* decompressions =
                int_field ~what:"attrib region" r "decompressions"
              in
              let* cycles = int_field ~what:"attrib region" r "cycles" in
              let share =
                match Option.bind (J.member "share" r) J.to_float_opt with
                | Some s -> s
                | None -> 0.0
              in
              Ok ({ rid; decompressions; cycles; share } :: acc))
            (Ok []) regions
        in
        Ok
          {
            rows = List.rev rows;
            total_decompressions;
            total_cycles;
            run_cycles;
            params;
          }
      | Some _ | None -> Error "attrib json: missing \"regions\" list")
    | Some (J.String other) ->
      Error
        (Printf.sprintf "unsupported attrib schema %S (expected %S)" other
           "pgcc-attrib-v1")
    | Some _ | None ->
      Error
        "missing \"schema\" field (re-save with squashc attrib --json; \
         pre-v1 files carry no schema)"

  let load_file path =
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in_noerr ic;
      (match Report.Json.of_string s with
      | Error msg -> Error (path ^ ": invalid JSON: " ^ msg)
      | Ok doc -> (
        match of_json doc with
        | Ok v -> Ok v
        | Error msg -> Error (path ^ ": " ^ msg)))

  let overhead_share t =
    match t.run_cycles with
    | Some rc when rc > 0 ->
      Some (float_of_int t.total_cycles /. float_of_int rc)
    | Some _ | None -> None
end

let to_saved ?run_cycles ?(params = []) (a : t) : Saved.t =
  {
    Saved.rows =
      List.map
        (fun (r : row) ->
          { Saved.rid = r.rid; decompressions = r.decompressions;
            cycles = r.cycles; share = r.share })
        a.rows;
    total_decompressions = a.total_decompressions;
    total_cycles = a.total_cycles;
    run_cycles;
    params;
  }

type delta = {
  drid : int;
  cycles_a : int;
  cycles_b : int;
  share_a : float;
  share_b : float;
  decomp_a : int;
  decomp_b : int;
}

let diff (a : Saved.t) (b : Saved.t) =
  let find rows rid =
    List.find_opt (fun (r : Saved.row) -> r.Saved.rid = rid) rows
  in
  let rids =
    List.sort_uniq compare
      (List.map (fun (r : Saved.row) -> r.Saved.rid) a.Saved.rows
      @ List.map (fun (r : Saved.row) -> r.Saved.rid) b.Saved.rows)
  in
  List.map
    (fun rid ->
      let ra = find a.Saved.rows rid and rb = find b.Saved.rows rid in
      let cy = function Some (r : Saved.row) -> r.Saved.cycles | None -> 0 in
      let sh = function Some (r : Saved.row) -> r.Saved.share | None -> 0.0 in
      let dc = function
        | Some (r : Saved.row) -> r.Saved.decompressions
        | None -> 0
      in
      {
        drid = rid;
        cycles_a = cy ra;
        cycles_b = cy rb;
        share_a = sh ra;
        share_b = sh rb;
        decomp_a = dc ra;
        decomp_b = dc rb;
      })
    rids
  |> List.sort (fun x y ->
         match
           compare
             (abs (y.cycles_b - y.cycles_a))
             (abs (x.cycles_b - x.cycles_a))
         with
         | 0 -> compare x.drid y.drid
         | c -> c)

let render_diff (a : Saved.t) (b : Saved.t) =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let describe label (s : Saved.t) =
    pf "%s: %s\n" label
      (if s.Saved.params = [] then "(no params recorded)"
       else
         String.concat " "
           (List.map (fun (k, v) -> k ^ "=" ^ v) s.Saved.params))
  in
  describe "A" a;
  describe "B" b;
  let tbl =
    Report.Table.create ~title:"attribution diff (B - A)"
      [ ("region", Report.Table.Right); ("cycles A", Report.Table.Right);
        ("cycles B", Report.Table.Right); ("d cycles", Report.Table.Right);
        ("share A", Report.Table.Right); ("share B", Report.Table.Right);
        ("d share", Report.Table.Right); ("decomp A", Report.Table.Right);
        ("decomp B", Report.Table.Right) ]
  in
  let interesting =
    List.filter
      (fun d ->
        d.cycles_a <> 0 || d.cycles_b <> 0 || d.decomp_a <> 0
        || d.decomp_b <> 0)
      (diff a b)
  in
  List.iter
    (fun d ->
      Report.Table.add_row tbl
        [ string_of_int d.drid; string_of_int d.cycles_a;
          string_of_int d.cycles_b;
          Printf.sprintf "%+d" (d.cycles_b - d.cycles_a);
          Report.Table.cell_percent ~decimals:1 d.share_a;
          Report.Table.cell_percent ~decimals:1 d.share_b;
          Printf.sprintf "%+.1fpp" (100.0 *. (d.share_b -. d.share_a));
          string_of_int d.decomp_a; string_of_int d.decomp_b ])
    interesting;
  Report.Table.add_separator tbl;
  Report.Table.add_row tbl
    [ "total"; string_of_int a.Saved.total_cycles;
      string_of_int b.Saved.total_cycles;
      Printf.sprintf "%+d" (b.Saved.total_cycles - a.Saved.total_cycles);
      ""; ""; ""; string_of_int a.Saved.total_decompressions;
      string_of_int b.Saved.total_decompressions ];
  Buffer.add_string buf (Report.Table.render tbl);
  (match (Saved.overhead_share a, Saved.overhead_share b) with
  | Some sa, Some sb ->
    pf "overhead share of run: %.1f%% -> %.1f%% (%+.1fpp)\n" (100.0 *. sa)
      (100.0 *. sb)
      (100.0 *. (sb -. sa))
  | _ -> ());
  Buffer.contents buf
