type row = {
  rid : int;
  blocks : int;
  stream_words : int;
  buffer_words : int;
  bits : int;
  max_freq : int;
  decompressions : int;
  cycles : int;
  share : float;
  funcs : string list;
}

type t = {
  rows : row list;
  total_decompressions : int;
  total_cycles : int;
}

let compute ?profile (r : Squash.result) (stats : Runtime.stats) =
  let sq = r.Squash.squashed in
  let regions = r.Squash.regions.Regions.regions in
  let offsets = sq.Rewrite.blob_offsets in
  let blob_bits = 8 * String.length sq.Rewrite.blob in
  let total_cycles = Array.fold_left ( + ) 0 stats.Runtime.per_region_cycles in
  let rows =
    Array.to_list regions
    |> List.map (fun (reg : Regions.region) ->
           let rid = reg.Regions.id in
           let img = sq.Rewrite.images.(rid) in
           let bits =
             (if rid + 1 < Array.length offsets then offsets.(rid + 1)
              else blob_bits)
             - offsets.(rid)
           in
           let max_freq =
             match profile with
             | None -> 0
             | Some prof ->
               List.fold_left
                 (fun acc (f, b) -> max acc (Profile.freq prof f b))
                 0 reg.Regions.blocks
           in
           let funcs =
             List.fold_left
               (fun acc (f, _) -> if List.mem f acc then acc else f :: acc)
               [] reg.Regions.blocks
             |> List.rev
           in
           let decompressions =
             if rid < Array.length stats.Runtime.per_region then
               stats.Runtime.per_region.(rid)
             else 0
           in
           let cycles =
             if rid < Array.length stats.Runtime.per_region_cycles then
               stats.Runtime.per_region_cycles.(rid)
             else 0
           in
           {
             rid;
             blocks = List.length reg.Regions.blocks;
             stream_words = List.length img.Rewrite.stream;
             buffer_words = img.Rewrite.buffer_words;
             bits;
             max_freq;
             decompressions;
             cycles;
             share =
               (if total_cycles > 0 then
                  float_of_int cycles /. float_of_int total_cycles
                else 0.0);
             funcs;
           })
    |> List.sort (fun a b ->
           match compare b.cycles a.cycles with
           | 0 -> compare a.rid b.rid
           | c -> c)
  in
  { rows; total_decompressions = stats.Runtime.decompressions; total_cycles }

let funcs_cell funcs =
  let s = String.concat "," funcs in
  if String.length s <= 32 then s else String.sub s 0 29 ^ "..."

let render t =
  let tbl =
    Report.Table.create ~title:"runtime overhead attribution"
      [ ("region", Report.Table.Right); ("blocks", Report.Table.Right);
        ("words", Report.Table.Right); ("buf", Report.Table.Right);
        ("bits", Report.Table.Right); ("max freq", Report.Table.Right);
        ("decomp", Report.Table.Right); ("cycles", Report.Table.Right);
        ("cyc/decomp", Report.Table.Right); ("share", Report.Table.Right);
        ("functions", Report.Table.Left) ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row tbl
        [ string_of_int r.rid; string_of_int r.blocks;
          string_of_int r.stream_words; string_of_int r.buffer_words;
          string_of_int r.bits; string_of_int r.max_freq;
          string_of_int r.decompressions; string_of_int r.cycles;
          (if r.decompressions > 0 then
             string_of_int (r.cycles / r.decompressions)
           else "-");
          Report.Table.cell_percent ~decimals:1 r.share;
          funcs_cell r.funcs ])
    t.rows;
  Report.Table.add_separator tbl;
  Report.Table.add_row tbl
    [ "total"; ""; ""; ""; ""; ""; string_of_int t.total_decompressions;
      string_of_int t.total_cycles; ""; ""; "" ];
  Report.Table.render tbl

let to_json t =
  let open Report.Json in
  Obj
    [ ("total_decompressions", Int t.total_decompressions);
      ("total_cycles", Int t.total_cycles);
      ( "regions",
        List
          (List.map
             (fun r ->
               Obj
                 [ ("rid", Int r.rid); ("blocks", Int r.blocks);
                   ("stream_words", Int r.stream_words);
                   ("buffer_words", Int r.buffer_words); ("bits", Int r.bits);
                   ("max_freq", Int r.max_freq);
                   ("decompressions", Int r.decompressions);
                   ("cycles", Int r.cycles); ("share", Float r.share);
                   ("funcs", List (List.map (fun f -> String f) r.funcs)) ])
             t.rows) ) ]
