type fault = Rebias_delta of int

type failure = { rid : int; slot : int; site : string; reason : string }

type report = {
  regions : int;
  slots : int;
  blocks : int;
  proved : int;
  stubs : int;
  conservative : int;
  failures : failure list;
}

(* The rewritten side of a proof: the typed exit of a materialised block,
   recovered by walking the buffer words.  Addresses are absolute (already
   resolved against the slot base the block was materialised at). *)
type rexit =
  | RFall  (** Ran off the end of the block's span: an absorbed edge. *)
  | RGoto of int
  | RBranch of Instr.cond * Equiv.value * int * int option
      (** Taken target; [None] fallthrough means absorbed-by-next. *)
  | RCall of { ra : Reg.t; target : int; resume : int }
      (** Plain [bsr]: raw return address at buffer offset [resume]. *)
  | RCall_stub of { ra : Reg.t; target : int; resume : int }
      (** [bsr ra, CreateStub ; br target]: resume through a restore
          stub tagged with buffer offset [resume]. *)
  | RCalli_stub of { ra : Reg.t; rb : Reg.t; target : Equiv.value; resume : int }
  | RJump of Equiv.value
  | RRet of Equiv.value

let pp_rexit ppf = function
  | RFall -> Format.fprintf ppf "fall off the block's span"
  | RGoto a -> Format.fprintf ppf "goto 0x%x" a
  | RBranch (c, v, t, f) ->
    Format.fprintf ppf "if %s %a goto 0x%x else %s"
      (match c with
      | Instr.Eq -> "eq"
      | Instr.Ne -> "ne"
      | Instr.Lt -> "lt"
      | Instr.Le -> "le"
      | Instr.Gt -> "gt"
      | Instr.Ge -> "ge")
      Equiv.pp_value v t
      (match f with None -> "next" | Some a -> Printf.sprintf "0x%x" a)
  | RCall { ra; target; resume } ->
    Format.fprintf ppf "bsr 0x%x (ra=%s, raw resume @%d)" target (Reg.name ra) resume
  | RCall_stub { ra; target; resume } ->
    Format.fprintf ppf "stub call 0x%x (ra=%s, resume @%d)" target (Reg.name ra)
      resume
  | RCalli_stub { ra; rb; target; resume } ->
    Format.fprintf ppf "stub calli %a (ra=%s, rb=%s, resume @%d)" Equiv.pp_value
      target (Reg.name ra) (Reg.name rb) resume
  | RJump v -> Format.fprintf ppf "jmp %a" Equiv.pp_value v
  | RRet v -> Format.fprintf ppf "ret %a" Equiv.pp_value v

let setjmp_code = Syscall.to_code Syscall.Setjmp

let run ?(slots = 1) ?fault (sq : Rewrite.t) =
  if slots < 1 then invalid_arg "Prove.run: slots must be >= 1";
  let p = sq.Rewrite.prog in
  let func_of = Hashtbl.create 64 in
  List.iter (fun (f : Prog.Func.t) -> Hashtbl.replace func_of f.name f) p.Prog.funcs;
  let block_tbl = Hashtbl.create 256 in
  List.iter (fun (k, a) -> Hashtbl.replace block_tbl k a) sq.Rewrite.block_addrs;
  let table_tbl = Hashtbl.create 16 in
  List.iter (fun (k, a) -> Hashtbl.replace table_tbl k a) sq.Rewrite.table_addrs;
  let oracle =
    {
      Equiv.func_addr = (fun g -> Hashtbl.find_opt block_tbl (g, 0));
      table_addr = (fun k -> Hashtbl.find_opt table_tbl k);
    }
  in
  let failures = ref [] in
  let fail ~rid ~slot ~site fmt =
    Format.kasprintf
      (fun reason -> failures := { rid; slot; site; reason } :: !failures)
      fmt
  in
  let blocks = ref 0 in
  let proved = ref 0 in
  let conservative = ref 0 in

  (* --- entry-stub obligations (slot-independent) -------------------- *)
  (* Same obligations as the linter's Bad_stub/Live_stub_reg checks, with
     the dead-register fact re-derived from the independent Dataflow
     liveness solver: the stub decodes to its 2- or 3-word form, the bsr
     lands on the decompressor entry matching the link register, and the
     tag names this block's (region, buffer offset) pair — which is what
     the decomp hook dereferences into [slot_base + 4*off]. *)
  let text = sq.Rewrite.text.Easm.words in
  let tbase = sq.Rewrite.text.Easm.base in
  let word_at addr =
    let idx = (addr - tbase) / 4 in
    if addr land 3 <> 0 || idx < 0 || idx >= Array.length text then None
    else Some text.(idx)
  in
  let live_cache = Hashtbl.create 16 in
  let live_in fname i =
    let lv =
      match Hashtbl.find_opt live_cache fname with
      | Some lv -> lv
      | None ->
        let lv = Dataflow.Liveness.solve (Hashtbl.find func_of fname) in
        Hashtbl.replace live_cache fname lv;
        lv
    in
    lv.Cfg.live_in.(i)
  in
  let stubs = ref 0 in
  let region_of key = Hashtbl.find_opt sq.Rewrite.regions.Regions.region_of key in
  List.iter
    (fun (((fname, i) as key), addr) ->
      let rid = match region_of key with Some r -> r | None -> -1 in
      let site = Printf.sprintf "%s.b%d" fname i in
      let sfail fmt = fail ~rid ~slot:0 ~site fmt in
      let check_tag tag_addr =
        match (word_at tag_addr, region_of key) with
        | None, _ -> sfail "stub tag word at 0x%x lies outside the text" tag_addr
        | _, None -> sfail "stub guards a block that is in no region"
        | Some tag, Some rid ->
          let off =
            Hashtbl.find_opt sq.Rewrite.images.(rid).Rewrite.block_offset key
          in
          if Some (tag land 0xFFFF) <> off || tag lsr 16 <> rid then
            sfail
              "stub tag 0x%x does not name (region %d, offset %s): resuming \
               through it would enter the buffer at the wrong word"
              tag rid
              (match off with None -> "?" | Some o -> string_of_int o)
          else incr stubs
      in
      match word_at addr with
      | None -> sfail "stub address 0x%x lies outside the text" addr
      | Some w -> (
        match Instr.decode w with
        | Ok (Instr.Bsr { ra; disp }) ->
          if addr + 4 + (4 * disp) <> Rewrite.decomp_entry sq ra then
            sfail "stub bsr misses the decompressor entry for %s" (Reg.name ra)
          else if ra = Reg.sp || ra = Reg.zero then
            sfail "stub links through reserved register %s" (Reg.name ra)
          else if Cfg.Regset.mem ra (live_in fname i) then
            sfail
              "stub clobbers %s, which the independent liveness analysis \
               proves live at the block entry"
              (Reg.name ra)
          else check_tag (addr + 4)
        | Ok (Instr.Mem { op = Instr.Stw; ra; rb; disp = -4 })
          when ra = Reg.ra && rb = Reg.sp -> (
          match Option.map Instr.decode (word_at (addr + 4)) with
          | Some (Ok (Instr.Bsr { ra = ra2; disp }))
            when ra2 = Reg.ra
                 && addr + 8 + (4 * disp) = Rewrite.decomp_entry_push sq ->
            check_tag (addr + 8)
          | _ -> sfail "push-form stub lacks its bsr to the push entry")
        | Ok _ | Error _ ->
          sfail "stub starts with neither a bsr nor a push of ra"))
    sq.Rewrite.stub_addrs;

  (* --- per-region, per-slot block proofs ----------------------------- *)
  let offsets = sq.Rewrite.blob_offsets in
  Array.iteri
    (fun rid (r : Regions.region) ->
      let img = sq.Rewrite.images.(rid) in
      let bw = img.Rewrite.buffer_words in
      let rkeys = Array.of_list r.Regions.blocks in
      let nblocks = Array.length rkeys in
      let rev_off = Hashtbl.create 16 in
      Array.iter
        (fun key ->
          Hashtbl.replace rev_off (Hashtbl.find img.Rewrite.block_offset key) key)
        rkeys;
      (* Decode this region's slice of the blob — the proof is about what
         the blob actually holds, not the stream the rewrite intended. *)
      let bit_end =
        if rid + 1 < Array.length offsets then Some offsets.(rid + 1) else None
      in
      match
        Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
          ~bit_offset:offsets.(rid) ?bit_end ()
      with
      | exception (Bitio.Corrupt_stream _ | Failure _ | Invalid_argument _) ->
        blocks := !blocks + (nblocks * slots);
        fail ~rid ~slot:0
          ~site:(Printf.sprintf "region %d" rid)
          "stream does not decode; nothing to prove"
      | stream, _work ->
        for slot = 0 to slots - 1 do
          let base =
            sq.Rewrite.buffer_base + (4 * sq.Rewrite.buffer_words * slot)
          in
          (* Materialise exactly as Runtime.decompress would for this
             slot, but into a symbolic buffer, and catch what would be a
             runtime crash: a rebiased displacement that no longer fits
             its 21-bit field. *)
          let buf = Array.make (max bw 1) Instr.Nop in
          let pos = ref 0 in
          let overflow = ref None in
          let put ins =
            (match Instr.encode ins with
            | (_ : Word.t) -> ()
            | exception Instr.Encode_error (msg, _) ->
              if !overflow = None then overflow := Some (msg, ins));
            if !pos < bw then buf.(!pos) <- ins;
            incr pos
          in
          let pc_rel_to target = (target - (base + (4 * (!pos + 1)))) asr 2 in
          let delta =
            (sq.Rewrite.buffer_words * slot)
            + (match fault with Some (Rebias_delta k) when slot > 0 -> k | _ -> 0)
          in
          let rebias disp =
            let target0 = sq.Rewrite.buffer_base + (4 * (!pos + 1)) + (4 * disp) in
            if target0 >= sq.Rewrite.buffer_base then disp else disp - delta
          in
          List.iter
            (fun ins ->
              match ins with
              | Instr.Bsrx { ra; disp } ->
                put
                  (Instr.Bsr
                     { ra; disp = pc_rel_to (Rewrite.create_stub_entry sq ra) });
                put (Instr.Br { ra = Reg.zero; disp = rebias disp })
              | Instr.Jsr { ra; rb; hint = 1 } ->
                put
                  (Instr.Bsr
                     { ra; disp = pc_rel_to (Rewrite.create_stub_entry sq ra) });
                put (Instr.Jmp { ra = Reg.zero; rb; hint = 0 })
              | Instr.Br { ra; disp } -> put (Instr.Br { ra; disp = rebias disp })
              | Instr.Cbr { op; ra; disp } ->
                put (Instr.Cbr { op; ra; disp = rebias disp })
              | Instr.Bsr { ra; disp } -> put (Instr.Bsr { ra; disp = rebias disp })
              | ins -> put ins)
            stream;
          blocks := !blocks + nblocks;
          if !pos <> bw then
            fail ~rid ~slot
              ~site:(Printf.sprintf "region %d" rid)
              "decoded stream materialises %d words, the image declares %d" !pos
              bw
          else if !overflow <> None then begin
            match !overflow with
            | Some (msg, ins) ->
              fail ~rid ~slot
                ~site:(Printf.sprintf "region %d" rid)
                "materialisation would crash re-encoding %a at slot %d: %s"
                Instr.pp ins slot msg
            | None -> assert false
          end
          else
            (* Per-block symbolic execution and matching. *)
            let addr_at p disp = base + (4 * (p + 1)) + (4 * disp) in
            let resolve a =
              if a >= base && a < base + (4 * bw) then
                let w = (a - base) / 4 in
                match Hashtbl.find_opt rev_off w with
                | Some key -> `Block key
                | None -> `Interior w
              else `Text a
            in
            let pp_target ppf = function
              | `Block (f, i) -> Format.fprintf ppf "%s.b%d (in buffer)" f i
              | `Interior w -> Format.fprintf ppf "buffer interior word %d" w
              | `Text a -> Format.fprintf ppf "0x%x" a
            in
            let target_matches t key =
              match t with
              | `Block k -> k = key
              | `Interior _ -> false
              | `Text a -> Hashtbl.find_opt block_tbl key = Some a
            in
            for idx = 0 to nblocks - 1 do
              let ((fname, bi) as key) = rkeys.(idx) in
              let site = Printf.sprintf "%s.b%d" fname bi in
              let bfail fmt = fail ~rid ~slot ~site fmt in
              let off = Hashtbl.find img.Rewrite.block_offset key in
              let off_next =
                if idx + 1 < nblocks then
                  Hashtbl.find img.Rewrite.block_offset rkeys.(idx + 1)
                else bw
              in
              let b = (Hashtbl.find func_of fname).Prog.Func.blocks.(bi) in
              match Equiv.run_block ~fname b with
              | Error msg -> bfail "original side: %s" msg
              | Ok (orig, oexit) -> (
                let st = Equiv.init_state () in
                (* Walk the materialised words of this block's span. *)
                let rec walk p =
                  if p >= off_next then Ok RFall
                  else
                    match buf.(p) with
                    | Instr.Br { ra; disp } when ra = Reg.zero ->
                      if p + 1 <> off_next then
                        Error (Printf.sprintf "code after a br at word %d" p)
                      else Ok (RGoto (addr_at p disp))
                    | Instr.Cbr { op; ra; disp } ->
                      let taken = addr_at p disp in
                      let v = Equiv.reg st ra in
                      if p + 1 = off_next then Ok (RBranch (op, v, taken, None))
                      else (
                        match buf.(p + 1) with
                        | Instr.Br { ra = z; disp = d2 }
                          when z = Reg.zero && p + 2 = off_next ->
                          Ok (RBranch (op, v, taken, Some (addr_at (p + 1) d2)))
                        | _ ->
                          Error
                            (Printf.sprintf
                               "cbr at word %d is not last and not followed by \
                                a single br"
                               p))
                    | Instr.Bsr { ra; disp } ->
                      let t = addr_at p disp in
                      if t = Rewrite.create_stub_entry sq ra then
                        if p + 2 <> off_next then
                          Error
                            (Printf.sprintf
                               "CreateStub bsr at word %d does not end the \
                                block with its transfer word"
                               p)
                        else (
                          match buf.(p + 1) with
                          | Instr.Br { ra = z; disp = d2 } when z = Reg.zero ->
                            Ok
                              (RCall_stub
                                 { ra; target = addr_at (p + 1) d2; resume = p + 2 })
                          | Instr.Jmp { ra = z; rb; hint = _ } when z = Reg.zero ->
                            Ok
                              (RCalli_stub
                                 { ra; rb; target = Equiv.reg st rb; resume = p + 2 })
                          | ins ->
                            Error
                              (Format.asprintf
                                 "CreateStub bsr followed by %a, not a br/jmp"
                                 Instr.pp ins))
                      else if p + 1 <> off_next then
                        Error (Printf.sprintf "code after a bsr at word %d" p)
                      else Ok (RCall { ra; target = t; resume = p + 1 })
                    | Instr.Jmp { ra; rb; hint = _ } when ra = Reg.zero ->
                      if p + 1 <> off_next then
                        Error (Printf.sprintf "code after a jmp at word %d" p)
                      else Ok (RJump (Equiv.reg st rb))
                    | Instr.Ret { ra; rb; hint = _ } when ra = Reg.zero ->
                      if p + 1 <> off_next then
                        Error (Printf.sprintf "code after a ret at word %d" p)
                      else Ok (RRet (Equiv.reg st rb))
                    | ( Instr.Br _ | Instr.Jmp _ | Instr.Ret _ | Instr.Jsr _
                      | Instr.Bsrx _ | Instr.Sentinel ) as ins ->
                      Error
                        (Format.asprintf "unexpected %a in the materialised buffer"
                           Instr.pp ins)
                    | ins -> (
                      match Equiv.step st ins with
                      | Ok () -> walk (p + 1)
                      | Error msg -> Error msg)
                in
                match walk off with
                | Error msg -> bfail "rewritten side: %s" msg
                | Ok rexit -> (
                  (* A setjmp inside a region would capture a buffer pc
                     that a later re-materialisation invalidates; the
                     exclude pass keeps it out, the prover enforces it. *)
                  let setjmp_inside =
                    List.exists
                      (function
                        | Equiv.Syscall (c, _) -> c = setjmp_code
                        | Equiv.Store _ -> false)
                      (Equiv.effects orig)
                  in
                  let next_is d =
                    idx + 1 < nblocks && rkeys.(idx + 1) = (fname, d)
                  in
                  let continuation_ok resume return_to =
                    resume = off_next && next_is return_to
                  in
                  let mismatch () =
                    bfail
                      "exit diverges at slot %d:@,  original:  %a@,  rewritten: %a"
                      slot Equiv.pp_exit oexit pp_rexit rexit
                  in
                  let exit_ok =
                    match (oexit, rexit) with
                    | Equiv.Goto d, RFall ->
                      if next_is d then true
                      else begin
                        bfail
                          "goto .%d was absorbed but the next buffer block is \
                           not .%d"
                          d d;
                        false
                      end
                    | Equiv.Goto d, RGoto a ->
                      if target_matches (resolve a) (fname, d) then true
                      else begin
                        bfail "goto .%d lands on %a at slot %d" d pp_target
                          (resolve a) slot;
                        false
                      end
                    | ( Equiv.Branch (c, v, taken, fl),
                        RBranch (c', v', taken_a, fall_a) ) ->
                      let fall_ok =
                        match fall_a with
                        | None -> next_is fl
                        | Some a -> target_matches (resolve a) (fname, fl)
                      in
                      if c <> c' || not (Equiv.equal_value oracle v v') then begin
                        mismatch ();
                        false
                      end
                      else if not (target_matches (resolve taken_a) (fname, taken))
                      then begin
                        bfail "taken edge .%d lands on %a at slot %d" taken
                          pp_target (resolve taken_a) slot;
                        false
                      end
                      else if not fall_ok then begin
                        bfail "fallthrough edge .%d diverges at slot %d" fl slot;
                        false
                      end
                      else true
                    | ( Equiv.Call { ra; callee; return_to },
                        (RCall { ra = ra'; target; resume } |
                         RCall_stub { ra = ra'; target; resume }) ) ->
                      let through_stub =
                        match rexit with RCall_stub _ -> true | _ -> false
                      in
                      if not (Reg.equal ra ra') then begin
                        mismatch ();
                        false
                      end
                      else if not (target_matches (resolve target) (callee, 0))
                      then begin
                        bfail "call to %s lands on %a at slot %d" callee pp_target
                          (resolve target) slot;
                        false
                      end
                      else if not (continuation_ok resume return_to) then begin
                        bfail
                          "call to %s resumes at buffer word %d, not at \
                           .%d's first word"
                          callee resume return_to;
                        false
                      end
                      else begin
                        (* A raw (stub-less) return address into the buffer
                           relies on the callee keeping this region
                           resident — the buffer-safety contract the
                           linter's unsafe-call check enforces. *)
                        if not through_stub then incr conservative;
                        true
                      end
                    | ( Equiv.Call_ind { ra; target = v; return_to },
                        RCalli_stub { ra = ra'; rb; target = v'; resume } ) ->
                      if not (Reg.equal ra ra') then begin
                        mismatch ();
                        false
                      end
                      else if Reg.equal ra rb then begin
                        bfail
                          "indirect call target register %s is the link \
                           register CreateStub clobbers"
                          (Reg.name rb);
                        false
                      end
                      else if not (Equiv.equal_value oracle v v') then begin
                        mismatch ();
                        false
                      end
                      else if not (continuation_ok resume return_to) then begin
                        bfail "indirect call resumes at buffer word %d, not .%d"
                          resume return_to;
                        false
                      end
                      else begin
                        (* Target-set correspondence is assumed, not proved. *)
                        incr conservative;
                        true
                      end
                    | Equiv.Jump_tab { target = v; table = _ }, RJump v' ->
                      if Equiv.equal_value oracle v v' then begin
                        (* The dispatched table entries themselves are the
                           linter's dangling-transfer obligation. *)
                        incr conservative;
                        true
                      end
                      else begin
                        mismatch ();
                        false
                      end
                    | Equiv.Return v, RRet v' ->
                      if Equiv.equal_value oracle v v' then true
                      else begin
                        mismatch ();
                        false
                      end
                    | Equiv.Stop, RFall -> true
                    | _, _ ->
                      mismatch ();
                      false
                  in
                  if setjmp_inside then
                    bfail
                      "setjmp inside a compressed region captures a buffer pc \
                       that re-materialisation invalidates"
                  else if exit_ok then
                    match Equiv.compare_states oracle ~orig ~rew:st with
                    | Ok () -> incr proved
                    | Error msg -> bfail "state diverges at slot %d:@,%s" slot msg))
            done
        done)
    sq.Rewrite.regions.Regions.regions;
  {
    regions = Array.length sq.Rewrite.regions.Regions.regions;
    slots;
    blocks = !blocks;
    proved = !proved;
    stubs = !stubs;
    conservative = !conservative;
    failures = List.rev !failures;
  }

let failure_message f =
  let first =
    match String.index_opt f.reason '\n' with
    | None -> f.reason
    | Some i -> String.sub f.reason 0 i
  in
  Printf.sprintf "region %d slot %d @ %s: %s" f.rid f.slot f.site first

let render r =
  match r.failures with
  | [] ->
    Printf.sprintf
      "proved %d/%d block proofs across %d regions x %d slots (%d stub \
       obligations, %d conservative assumptions)"
      r.proved r.blocks r.regions r.slots r.stubs r.conservative
  | fs ->
    String.concat "\n"
      (List.map
         (fun f ->
           Printf.sprintf "UNPROVED region %d slot %d @ %s:\n%s" f.rid f.slot
             f.site f.reason)
         fs)

let to_diags r =
  List.map
    (fun f ->
      {
        Verify.severity = Verify.Error;
        kind = Verify.Unproved_region;
        site = f.site;
        region = (if f.rid >= 0 then Some f.rid else None);
        addr = None;
        message = failure_message f;
      })
    r.failures

let report_json r =
  let open Report.Json in
  Obj
    [
      ("regions", Int r.regions);
      ("slots", Int r.slots);
      ("blocks", Int r.blocks);
      ("proved", Int r.proved);
      ("stubs", Int r.stubs);
      ("conservative", Int r.conservative);
      ( "failures",
        List
          (List.map
             (fun f ->
               Obj
                 [
                   ("region", Int f.rid);
                   ("slot", Int f.slot);
                   ("site", String f.site);
                   ("reason", String f.reason);
                 ])
             r.failures) );
    ]
