(** The instrumented pass pipeline behind {!Squash.run}.

    The standard pipeline is the paper's transformation sequence, one
    {!Pass.t} per stage:

    - ["resolve"] — constant-propagation resolution of unannotated
      indirect jumps: a [Jump_indirect { table = None; _ }] whose register
      provably holds an entry of one jump table gains that table
      annotation, shrinking both the never-compress set and every
      successor over-approximation downstream (§6.2)
    - ["cold"] — cold-block identification (§5)
    - ["unswitch"] — jump-table unswitching (§6.2); omitted by
      {!of_options} when [options.unswitch] is false
    - ["exclude"] — never-compress set: the entry function, setjmp
      callers, functions with unanalysable indirect jumps, and unmatched
      dispatches (§2.2, §6.2)
    - ["regions"] — compressible-region formation and packing (§4)
    - ["buffer-safe"] — buffer-safety analysis (§6.1); honours
      [options.use_buffer_safe] by treating every function as unsafe when
      the optimisation is off, and [options.sharp_buffer_safe] by running
      {!Buffer_safe.analyze_sharp} instead of the conservative analysis
    - ["rewrite"] — the stub/decompressor image build (§2–3)

    {!execute} runs a pass list over a {!Pass.state}, recording per-pass
    wall-clock time and instruction/word deltas, optionally tracing each
    pass and validating the IR (and, once present, the squashed image)
    after every pass. *)

exception Check_failed of { pass : string; errors : string list }
(** Raised by [execute ~check_each:true] when validation fails after a
    pass: the damage happened in exactly [pass]. *)

val resolve_pass : Pass.t
val cold_pass : Pass.t
val unswitch_pass : Pass.t
val exclude_pass : Pass.t
val regions_pass : Pass.t
val buffer_safe_pass : Pass.t
val rewrite_pass : Pass.t

val lint_pass : Pass.t
(** Opt-in: {!Verify.run} over the squashed image; raises {!Check_failed}
    (as pass ["lint"]) when any error-severity diagnostic fires.  Not part
    of {!standard}; append it (or pass [~lint:true] to {!Squash.run}) to
    verify as part of the pipeline, the static counterpart of
    [~check_each]. *)

val prove_pass : Pass.t
(** Opt-in: {!Prove.run} with two cache slots over the squashed image — the
    translation-validation counterpart of {!lint_pass}; raises
    {!Check_failed} (as pass ["prove"]) when any region block cannot be
    proved equivalent to its materialised rewrite.  Ordered after ["lint"]
    when both run, so structural diagnostics surface before equivalence
    ones. *)

val standard : Pass.t list
(** All seven passes, in paper order. *)

val of_options : Pass.options -> Pass.t list
(** The standard list with option-disabled passes removed (currently:
    ["unswitch"] when [options.unswitch] is false).  This replaces the old
    ad-hoc [if options.unswitch then … else] branch. *)

val skip : string list -> Pass.t list -> Pass.t list
(** Remove passes by name. *)

val by_name : string -> Pass.t option
(** Look up a standard pass (or ["lint"]). *)

val names : Pass.t list -> string list

type run_stats = {
  passes : Pass.stats list;  (** One record per executed pass, in order. *)
  total_s : float;  (** Wall-clock total across all passes. *)
}

val execute :
  ?check_each:bool ->
  ?trace:(string -> unit) ->
  ?obs:Obs.t ->
  passes:Pass.t list ->
  Pass.state ->
  Pass.state * run_stats
(** Run [passes] in order.

    Ordering is validated up front: every [requires] of a pass must appear
    earlier in the list, every [after] constraint must hold, and no name
    may repeat — violations raise [Invalid_argument] before anything runs.

    With [~check_each:true], {!Prog_check.check} (against the state's
    profile) runs after every pass, plus {!Check.check} once a squashed
    image exists; a failure raises {!Check_failed} naming the offending
    pass.  [trace] receives one line per pass as it completes.  [obs]
    receives {!Obs.Event.Pass_begin}/{!Obs.Event.Pass_end} span events
    (wall clock) and a ["pipeline.passes_run"] counter bump per pass. *)

val render_stats : run_stats -> string
(** An aligned text table of the per-pass statistics. *)

val stats_json : run_stats -> Report.Json.t
(** Machine-readable form: [{"total_s": …, "passes": [{"name": …,
    "elapsed_s": …, "instrs_before": …, "instrs_after": …,
    "words_before": …, "words_after": …, "note": …}, …]}]. *)
