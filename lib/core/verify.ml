type severity = Error | Warning

type kind =
  | Bad_stub
  | Dangling_transfer
  | Live_stub_reg
  | Unsafe_call
  | Unresolved_indirect
  | Stream_mismatch
  | Unreachable_code
  | Unproved_region

type diag = {
  severity : severity;
  kind : kind;
  site : string;
  region : int option;
  addr : int option;
  message : string;
}

let kind_name = function
  | Bad_stub -> "bad-stub"
  | Dangling_transfer -> "dangling-transfer"
  | Live_stub_reg -> "live-stub-reg"
  | Unsafe_call -> "unsafe-call"
  | Unresolved_indirect -> "unresolved-indirect"
  | Stream_mismatch -> "stream-mismatch"
  | Unreachable_code -> "unreachable-code"
  | Unproved_region -> "unproved-region"

let severity_name = function Error -> "error" | Warning -> "warning"

let message d =
  Printf.sprintf "%s %s @ %s: %s" (severity_name d.severity) (kind_name d.kind)
    d.site d.message

let errors diags = List.filter (fun d -> d.severity = Error) diags

(* Block reachability as a forward {!Dataflow} client over a boolean
   lattice: the entry block starts [true] and reachability propagates
   along every CFG edge (indirect jumps through an unknown table reach
   every block, keeping the analysis conservative). *)
module Reach = Dataflow.Make (struct
  type t = bool

  let bottom = false
  let join = ( || )
  let equal = Bool.equal
end)

let reachable_blocks f =
  let r =
    Reach.solve ~direction:Dataflow.Forward ~init:true ~transfer:(fun _ fact -> fact) f
  in
  r.Reach.before

let run (sq : Rewrite.t) =
  let diags = ref [] in
  let diag ?region ?addr severity kind site fmt =
    Format.kasprintf
      (fun message -> diags := { severity; kind; site; region; addr; message } :: !diags)
      fmt
  in
  let p = sq.Rewrite.prog in
  let regions = sq.Rewrite.regions in
  let region_of key = Hashtbl.find_opt regions.Regions.region_of key in
  let is_entry fname i = Regions.is_entry regions fname i in
  let func_of = Hashtbl.create 64 in
  List.iter (fun (f : Prog.Func.t) -> Hashtbl.replace func_of f.name f) p.Prog.funcs;
  (* Which functions live entirely inside one region (mirrors the
     rewrite's plan: a call to such a callee stays a buffer-relative
     [bsr], so its target need not be an entry). *)
  let fully_in_tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Prog.Func.t) ->
      match region_of (f.name, 0) with
      | None -> ()
      | Some rid ->
        if
          Array.for_all Fun.id
            (Array.mapi (fun i _ -> region_of (f.name, i) = Some rid) f.blocks)
        then Hashtbl.replace fully_in_tbl f.name rid)
    p.Prog.funcs;
  let fully_in name = Hashtbl.find_opt fully_in_tbl name in

  (* --- entry stubs: decode, target, tag, dead register -------------- *)
  let text = sq.Rewrite.text.Easm.words in
  let base = sq.Rewrite.text.Easm.base in
  let word_at addr =
    let idx = (addr - base) / 4 in
    if addr land 3 <> 0 || idx < 0 || idx >= Array.length text then None
    else Some text.(idx)
  in
  let live_cache = Hashtbl.create 16 in
  let live_in fname i =
    let lv =
      match Hashtbl.find_opt live_cache fname with
      | Some lv -> lv
      | None ->
        let lv = Dataflow.Liveness.solve (Hashtbl.find func_of fname) in
        Hashtbl.replace live_cache fname lv;
        lv
    in
    lv.Cfg.live_in.(i)
  in
  let nregions = Array.length sq.Rewrite.images in
  let check_tag ~site ((fname, i) as key) addr =
    match word_at addr with
    | None ->
      diag ~addr Error Bad_stub site "tag word at 0x%x lies outside the text" addr
    | Some tag ->
      let rid = tag lsr 16 and off = tag land 0xFFFF in
      if rid >= nregions then
        diag ~addr Error Bad_stub site "tag names region %d, image has %d" rid
          nregions
      else
        let img = sq.Rewrite.images.(rid) in
        (match Hashtbl.find_opt img.Rewrite.block_offset key with
        | None ->
          diag ~region:rid ~addr Error Bad_stub site
            "block %s.%d is not laid out in region %d" fname i rid
        | Some expect ->
          if expect <> off then
            diag ~region:rid ~addr Error Bad_stub site
              "tag offset %d is not the block's instruction boundary %d in \
               region %d"
              off expect rid)
  in
  let check_stub_reg ~site ~addr (fname, i) rf =
    if rf = Reg.sp || rf = Reg.zero then
      diag ~addr Error Live_stub_reg site "stub uses reserved register %s"
        (Reg.name rf)
    else if Cfg.Regset.mem rf (live_in fname i) then
      diag ~addr Error Live_stub_reg site
        "stub return-address register %s is live at the block entry"
        (Reg.name rf)
  in
  List.iter
    (fun (((fname, i) as key), addr) ->
      let site = Printf.sprintf "%s.b%d" fname i in
      match word_at addr with
      | None ->
        diag ~addr Error Bad_stub site "stub address 0x%x outside the text" addr
      | Some w -> (
        match Instr.decode w with
        | Ok (Instr.Bsr { ra; disp }) ->
          let target = addr + 4 + (4 * disp) in
          if target <> Rewrite.decomp_entry sq ra then
            diag ~addr Error Bad_stub site
              "bsr targets 0x%x, not the decompressor entry for %s" target
              (Reg.name ra)
          else begin
            check_tag ~site key (addr + 4);
            check_stub_reg ~site ~addr key ra
          end
        | Ok (Instr.Mem { op = Instr.Stw; ra; rb; disp = -4 })
          when rb = Reg.sp && ra = Reg.ra -> (
          match word_at (addr + 4) with
          | None -> diag ~addr Error Bad_stub site "truncated push-form stub"
          | Some w2 -> (
            match Instr.decode w2 with
            | Ok (Instr.Bsr { ra = ra2; disp }) ->
              let target = addr + 8 + (4 * disp) in
              if ra2 <> Reg.ra then
                diag ~addr Error Bad_stub site "push form links through %s, not ra"
                  (Reg.name ra2)
              else if target <> Rewrite.decomp_entry_push sq then
                diag ~addr Error Bad_stub site
                  "push form targets 0x%x, not the push entry" target
              else check_tag ~site key (addr + 8)
            | Ok _ | Error _ ->
              diag ~addr Error Bad_stub site "push form lacks its bsr word"))
        | Ok _ | Error _ ->
          diag ~addr Error Bad_stub site
            "stub does not start with a bsr or a push of ra"))
    sq.Rewrite.stub_addrs;

  (* --- no transfer into a removed region's interior ------------------ *)
  let check_target ~site ~same_rid (fname, d) =
    match region_of (fname, d) with
    | None -> ()
    | Some r ->
      if not (same_rid = Some r || is_entry fname d) then
        diag ~region:r Error Dangling_transfer site
          "targets the interior of removed region %d (%s block %d)" r fname d
  in
  List.iter
    (fun (f : Prog.Func.t) ->
      Array.iteri
        (fun i (b : Prog.Block.t) ->
          let site = Printf.sprintf "%s.b%d" f.name i in
          let rid = region_of (f.name, i) in
          List.iter
            (function
              | Prog.Load_addr (_, Prog.Func_addr g) ->
                (* A materialised code address is absolute: even within
                   the same region it must name a bound label. *)
                check_target ~site ~same_rid:None (g, 0)
              | Prog.Load_addr (_, Prog.Table_addr _) | Prog.Instr _ -> ())
            b.items;
          (match b.term with
          | Prog.Call { callee; _ } ->
            let same_rid =
              match (rid, fully_in callee) with
              | Some r, Some r' when r = r' -> Some r
              | _ -> None
            in
            check_target ~site ~same_rid (callee, 0)
          | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _
          | Prog.Call_indirect _ | Prog.Jump_indirect _ | Prog.Return _
          | Prog.No_return ->
            ());
          List.iter
            (fun d -> check_target ~site ~same_rid:rid (f.name, d))
            (Prog.successors f i))
        f.blocks;
      Array.iteri
        (fun tid entries ->
          Array.iteri
            (fun k d ->
              check_target
                ~site:(Printf.sprintf "%s.table%d[%d]" f.name tid k)
                ~same_rid:None (f.name, d))
            entries)
        f.tables)
    p.Prog.funcs;

  (* --- unchanged calls in compressed code are buffer-safe ------------ *)
  let has_compressed fname =
    match Hashtbl.find_opt func_of fname with
    | None -> false
    | Some (f : Prog.Func.t) ->
      let any = ref false in
      Array.iteri
        (fun i _ -> if region_of (fname, i) <> None then any := true)
        f.blocks;
      !any
  in
  let bsafe = Buffer_safe.analyze_sharp p ~has_compressed in
  let addr_to_func = Hashtbl.create 64 in
  List.iter
    (fun (g, a) -> Hashtbl.replace addr_to_func a g)
    sq.Rewrite.func_entry_addrs;
  let buf_lo = sq.Rewrite.buffer_base in
  let buf_hi = sq.Rewrite.buffer_base + (4 * sq.Rewrite.buffer_words) in
  Array.iter
    (fun (img : Rewrite.region_image) ->
      let pos = ref 0 in
      List.iter
        (fun w ->
          (match w with
          | Rewrite.Plain (Instr.Bsr { disp; _ }) ->
            let target = sq.Rewrite.buffer_base + (4 * (!pos + 1 + disp)) in
            if not (target >= buf_lo && target < buf_hi) then begin
              let site = Printf.sprintf "region %d @ %d" img.Rewrite.rid !pos in
              match Hashtbl.find_opt addr_to_func target with
              | None ->
                diag ~region:img.Rewrite.rid ~addr:target Error Unsafe_call site
                  "plain bsr targets 0x%x, which is not a function entry"
                  target
              | Some g ->
                if not (Buffer_safe.is_safe bsafe g) then
                  diag ~region:img.Rewrite.rid ~addr:target Error Unsafe_call
                    site
                    "unchanged call to %s, which is not buffer-safe under \
                     the sharpened analysis"
                    g
            end
          | Rewrite.Plain _ | Rewrite.Expand_call _ | Rewrite.Expand_calli _ ->
            ());
          pos :=
            !pos
            + (match w with
              | Rewrite.Plain _ -> 1
              | Rewrite.Expand_call _ | Rewrite.Expand_calli _ -> 2))
        img.Rewrite.words)
    sq.Rewrite.images;

  (* --- every compressed stream decodes back to its region image ------ *)
  let offsets = sq.Rewrite.blob_offsets in
  Array.iteri
    (fun rid (img : Rewrite.region_image) ->
      let site = Printf.sprintf "region %d" rid in
      let bit_end =
        if rid + 1 < Array.length offsets then Some offsets.(rid + 1) else None
      in
      match
        Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
          ~bit_offset:offsets.(rid) ?bit_end ()
      with
      | exception Bitio.Corrupt_stream msg ->
        diag ~region:rid Error Stream_mismatch site "stream does not decode: %s"
          msg
      | exception Failure msg ->
        diag ~region:rid Error Stream_mismatch site "stream does not decode: %s"
          msg
      | exception Invalid_argument msg ->
        diag ~region:rid Error Stream_mismatch site
          "stream reads past its end: %s" msg
      | decoded, work ->
        if not (List.equal Instr.equal decoded img.Rewrite.stream) then
          diag ~region:rid Error Stream_mismatch site
            "decoded stream disagrees with the region image (%d vs %d \
             instructions)"
            (List.length decoded)
            (List.length img.Rewrite.stream)
        else if work.Compress.bits < 0 || work.Compress.steps < 0 then
          diag ~region:rid Error Stream_mismatch site
            "decoder reported negative work (%d bits, %d steps)"
            work.Compress.bits work.Compress.steps)
    sq.Rewrite.images;

  (* --- indirect calls with an empty candidate set -------------------- *)
  List.iter
    (fun (s : Consts.call_site) ->
      match s.Consts.resolution with
      | `Fallback [] ->
        diag Warning Unresolved_indirect
          (Printf.sprintf "%s.b%d" s.Consts.caller s.Consts.block)
          "indirect call with an empty candidate set: no function's address \
           is ever taken"
      | `Exact _ | `Fallback _ -> ())
    (Consts.indirect_call_sites p);

  (* --- dead surviving blocks ----------------------------------------- *)
  (* Function-level reachability over the callgraph with the resolved
     indirect edges, then block-level reachability inside each reachable
     function (the {!Dataflow} client above).  A surviving block — one
     the rewrite emitted into the text rather than a compressed stream —
     that no path reaches is dead weight the squash kept. *)
  let cg = Cfg.Callgraph.of_prog p in
  Consts.annotate_callgraph p cg;
  let reached_funcs = Hashtbl.create 64 in
  let rec visit g =
    if Hashtbl.mem func_of g && not (Hashtbl.mem reached_funcs g) then begin
      Hashtbl.add reached_funcs g ();
      List.iter visit (Cfg.Callgraph.callees cg g);
      List.iter visit (Cfg.Callgraph.indirect_callees cg g)
    end
  in
  visit p.Prog.entry;
  List.iter
    (fun (f : Prog.Func.t) ->
      let n = Array.length f.blocks in
      let emits i =
        let next = if i + 1 < n then Some (i + 1) else None in
        Prog.Block.size ~next f.blocks.(i) > 0
      in
      if not (Hashtbl.mem reached_funcs f.name) then begin
        if Array.exists Fun.id (Array.mapi (fun i _ -> emits i) f.blocks) then
          diag Warning Unreachable_code f.name
            "function is unreachable from %s over the resolved callgraph"
            p.Prog.entry
      end
      else
        let before = reachable_blocks f in
        Array.iteri
          (fun i _ ->
            if
              (not before.(i))
              && region_of (f.name, i) = None
              && emits i
            then
              diag Warning Unreachable_code
                (Printf.sprintf "%s.b%d" f.name i)
                "surviving block is unreachable within its function")
          f.blocks)
    p.Prog.funcs;

  List.rev !diags

let render diags =
  let t =
    Report.Table.create ~title:"lint diagnostics"
      [ ("severity", Report.Table.Left); ("kind", Report.Table.Left);
        ("site", Report.Table.Left); ("message", Report.Table.Left) ]
  in
  List.iter
    (fun d ->
      Report.Table.add_row t
        [ severity_name d.severity; kind_name d.kind; d.site; d.message ])
    diags;
  Report.Table.render t

let to_json diags =
  let open Report.Json in
  let opt_int = function None -> Null | Some v -> Int v in
  List
    (List.map
       (fun d ->
         Obj
           [ ("severity", String (severity_name d.severity));
             ("kind", String (kind_name d.kind)); ("site", String d.site);
             ("region", opt_int d.region); ("addr", opt_int d.addr);
             ("message", String d.message) ])
       diags)
