(** Buffer-safety analysis (paper, Section 6.1).

    A function is {e buffer-safe} when neither it nor anything it can call
    will invoke the decompressor.  A call from compressed code to a
    buffer-safe callee can be left as a plain [bsr]: the runtime buffer
    cannot be overwritten during the call, so no restore stub and no extra
    buffer instruction are needed.

    The analysis is the paper's iterative marking, at function granularity:
    unsafe functions are seeded and non-safety propagates from callees to
    callers until a fixed point.  Two precision levels share the loop:

    - {!analyze} (conservative): functions containing compressed blocks
      {e or any indirect call} start out non-safe — an indirect call's
      targets are treated as unknown, poisoning the whole call chain.
    - {!analyze_sharp}: only compressed blocks seed non-safety; an
      indirect call instead contributes the candidate-set edges resolved
      by the analysis layer ({!Consts.annotate_callgraph}) — the exact
      target when address propagation proves one, the program's
      address-taken set otherwise.  Sharpened is monotone with respect to
      the conservative analysis: every conservatively safe function stays
      safe (its call chains contain no indirect calls at all, so both
      analyses see the same edges). *)

type t

val analyze : Prog.t -> has_compressed:(string -> bool) -> t

val analyze_sharp : Prog.t -> has_compressed:(string -> bool) -> t
(** Sound under the IR's closed-world assumption: indirect-call targets
    only ever originate from [Load_addr (_, Func_addr _)] items (see
    {!Consts}). *)

val is_safe : t -> string -> bool

val safe_functions : t -> string list
(** Sorted. *)

val stats :
  Prog.t -> t -> in_region:(string -> int -> bool) ->
  [ `Safe_calls of int ] * [ `Direct_calls of int ] * [ `Indirect_calls of int ]
(** Call sites inside compressed regions: how many direct sites have a
    buffer-safe callee (the sites the optimisation actually rewrites), out
    of how many direct and indirect sites.  Indirect sites are reported
    separately because the rewrite always expands them through CreateStub —
    they can never be counted safe, whichever analysis ran. *)
