type options = Pass.options = {
  theta : float;
  k_bytes : int;
  gamma : float;
  pack : bool;
  use_buffer_safe : bool;
  sharp_buffer_safe : bool;
  unswitch : bool;
  decomp_words : int;
  max_stubs : int;
  coder : Compress.backend;
  regions_strategy : Regions.strategy;
}

let default_options = Pass.default_options

type result = {
  squashed : Rewrite.t;
  cold : Cold.t;
  regions : Regions.t;
  buffer_safe : Buffer_safe.t;
  resolved_jumps : (string * int) list;
  unswitched : (string * int) list;
  excluded_funcs : string list;
  original_words : int;
  squashed_words : int;
  options : options;
  stats : Pipeline.run_stats;
}

let run ?(options = default_options) ?(setjmp_callers = []) ?(check_each = false)
    ?(lint = false) ?(prove = false) ?trace ?obs (p : Prog.t) prof =
  let state = Pass.init ~options ~setjmp_callers p prof in
  let passes =
    Pipeline.of_options options
    @ (if lint then [ Pipeline.lint_pass ] else [])
    @ (if prove then [ Pipeline.prove_pass ] else [])
  in
  let state, stats = Pipeline.execute ~check_each ?trace ?obs ~passes state in
  let squashed = Pass.get_squashed ~who:"Squash.run" state in
  {
    squashed;
    cold = Pass.get_cold ~who:"Squash.run" state;
    regions = Pass.get_regions ~who:"Squash.run" state;
    buffer_safe = Pass.get_buffer_safe ~who:"Squash.run" state;
    resolved_jumps = state.Pass.resolved_jumps;
    unswitched = state.Pass.unswitched;
    excluded_funcs = Pass.get_excluded ~who:"Squash.run" state;
    original_words = state.Pass.original_words;
    squashed_words = Rewrite.total_words squashed;
    options;
    stats;
  }

let size_reduction r =
  if r.original_words = 0 then 0.0
  else float_of_int (r.original_words - r.squashed_words) /. float_of_int r.original_words

type size_breakdown = {
  never_compressed : int;
  entry_stubs : int;
  decompressor : int;
  offset_table : int;
  compressed_code : int;
  code_tables : int;
  stub_area : int;
  runtime_buffer : int;
}

let breakdown r =
  let sq = r.squashed in
  {
    never_compressed = Rewrite.never_compressed_words sq - sq.Rewrite.decomp_words;
    entry_stubs = sq.Rewrite.entry_stub_words;
    decompressor = sq.Rewrite.decomp_words;
    offset_table = Rewrite.offset_table_words sq;
    compressed_code = Rewrite.blob_words sq;
    code_tables = Rewrite.code_table_words sq;
    stub_area = sq.Rewrite.max_stubs * 4;
    runtime_buffer = sq.Rewrite.buffer_words;
  }

let compressed_instr_count r = Regions.compressed_instr_count r.squashed.Rewrite.prog r.regions

let gamma_achieved r =
  let sq = r.squashed in
  let compressed_words = Rewrite.blob_words sq + Rewrite.code_table_words sq in
  let original_region_words =
    Array.fold_left
      (fun acc (img : Rewrite.region_image) -> acc + List.length img.Rewrite.stream)
      0 sq.Rewrite.images
  in
  if original_region_words = 0 then 1.0
  else float_of_int compressed_words /. float_of_int original_region_words

let pp_summary ppf r =
  let b = breakdown r in
  Format.fprintf ppf
    "@[<v>squash θ=%g K=%d: %d -> %d words (%.1f%% smaller)@,\
    \  never-compressed %d (stubs %d)  decompressor %d  offset table %d@,\
    \  compressed code %d  code tables %d  stub area %d  buffer %d@,\
    \  regions %d  entries %d  γ(achieved) %.2f@]"
    r.options.theta r.options.k_bytes r.original_words r.squashed_words
    (100.0 *. size_reduction r)
    b.never_compressed b.entry_stubs b.decompressor b.offset_table b.compressed_code
    b.code_tables b.stub_area b.runtime_buffer
    (Array.length r.regions.Regions.regions)
    (Hashtbl.length r.regions.Regions.entries)
    (gamma_achieved r)
