(* The paper's split-stream backends as coder instances: plain canonical
   Huffman per stream (Section 3) and the move-to-front variant.  The model
   types are exposed so {!Compress.codes} can hold them as pure data. *)

type plain_model = { per_stream : Canonical.t option array }

type mtf_model = {
  mtf_per_stream : Canonical.t option array;  (* codes over MTF ranks *)
  alphabets : int array array;  (* sorted distinct values per stream *)
}

let code_for per_stream stream =
  match per_stream.(Instr.stream_index stream) with
  | Some c -> c
  | None -> failwith ("Coder_split: no code for stream " ^ Instr.stream_name stream)

let codeword_bits per_stream stream v =
  match Canonical.codeword (code_for per_stream stream) v with
  | Some (_, len) -> len
  | None -> failwith ("Coder_split: symbol outside alphabet of " ^ Instr.stream_name stream)

let huffman_table_bits per_stream =
  List.fold_left
    (fun acc stream ->
      match per_stream.(Instr.stream_index stream) with
      | None -> acc
      | Some c ->
        acc + Canonical.table_bits ~value_bits:(Coder.stream_value_bits stream) c)
    0 Instr.all_streams

let huffman_stream_stats per_stream =
  List.filter_map
    (fun stream ->
      match per_stream.(Instr.stream_index stream) with
      | None -> None
      | Some c ->
        Some
          ( Instr.stream_name stream,
            Canonical.symbol_count c,
            float_of_int (Canonical.max_length c) ))
    Instr.all_streams

let render_stream_bits totals =
  List.filter_map
    (fun stream ->
      let b = totals.(Instr.stream_index stream) in
      if b = 0 then None else Some (Instr.stream_name stream, b))
    Instr.all_streams

module Plain = struct
  type model = plain_model

  let name = "huffman"

  let build regions =
    let values = Coder.stream_values regions in
    let per_stream =
      Array.map
        (fun vs ->
          match vs with
          | [] -> None
          | _ :: _ -> Some (Canonical.of_freqs (Coder.freqs_of_values vs)))
        values
    in
    { per_stream }

  let encode_regions { per_stream } regions =
    let w = Bitio.Writer.create () in
    let offsets =
      Array.map
        (fun instrs ->
          let off = Bitio.Writer.length_bits w in
          List.iter
            (Coder.iter_fields (fun s v -> Canonical.encode (code_for per_stream s) w v))
            (Coder.with_sentinel instrs);
          off)
        regions
    in
    (Bitio.Writer.contents w, offsets)

  let decode_region { per_stream } blob ~bit_offset ~bit_end:_ =
    let r = Bitio.Reader.of_string ~start_bit:bit_offset blob in
    let bits = ref 0 and steps = ref 0 in
    let read stream =
      let v, b, probes = Canonical.decode (code_for per_stream stream) r in
      bits := !bits + b;
      steps := !steps + probes;
      v
    in
    let rec go acc =
      let opcode = read Instr.Opcode in
      match Instr.rebuild ~opcode (fun s -> read s) with
      | Error msg -> raise (Bitio.Corrupt_stream ("Coder_split.decode_region: " ^ msg))
      | Ok Instr.Sentinel -> List.rev acc
      | Ok ins -> go (ins :: acc)
    in
    let instrs = go [] in
    (instrs, { Coder.bits = !bits; steps = !steps })

  let table_bits { per_stream } = huffman_table_bits per_stream
  let stream_stats { per_stream } = huffman_stream_stats per_stream

  let stream_bits { per_stream } regions =
    let totals = Array.make Coder.stream_count 0 in
    Array.iter
      (fun instrs ->
        List.iter
          (Coder.iter_fields (fun s v ->
               let si = Instr.stream_index s in
               totals.(si) <- totals.(si) + codeword_bits per_stream s v))
          (Coder.with_sentinel instrs))
      regions;
    render_stream_bits totals
end

(* [Mtf] below shadows the huffman library's list transformer, so the
   what-if accounting that needs it lives up here. *)
let mtf_gain_bits regions =
  let values = Coder.stream_values regions in
  List.map
    (fun stream ->
      let vs = values.(Instr.stream_index stream) in
      match vs with
      | [] -> (Instr.stream_name stream, 0)
      | _ :: _ ->
        let plain = Huffman.total_encoded_bits (Coder.freqs_of_values vs) in
        let alphabet = List.sort_uniq compare vs in
        let ranks = Mtf.encode ~alphabet vs in
        let mtf = Huffman.total_encoded_bits (Coder.freqs_of_values ranks) in
        (Instr.stream_name stream, mtf - plain))
    Instr.all_streams

module Mtf = struct
  type model = mtf_model

  let name = "mtf"

  let build regions =
    let values = Coder.stream_values regions in
    let alphabets =
      Array.map (fun vs -> Array.of_list (List.sort_uniq compare vs)) values
    in
    (* Rank statistics: replay the per-region MTF walk. *)
    let rank_values = Array.make Coder.stream_count [] in
    let state = Coder.Mtf_state.create alphabets in
    Array.iter
      (fun instrs ->
        Coder.Mtf_state.reset state alphabets;
        List.iter
          (Coder.iter_fields (fun s v ->
               let si = Instr.stream_index s in
               let r = Coder.Mtf_state.rank_of state si v in
               rank_values.(si) <- r :: rank_values.(si)))
          (Coder.with_sentinel instrs))
      regions;
    let mtf_per_stream =
      Array.map
        (fun rs ->
          match rs with
          | [] -> None
          | _ :: _ -> Some (Canonical.of_freqs (Coder.freqs_of_values rs)))
        rank_values
    in
    { mtf_per_stream; alphabets }

  let encode_regions { mtf_per_stream; alphabets } regions =
    let w = Bitio.Writer.create () in
    let state = Coder.Mtf_state.create alphabets in
    let offsets =
      Array.map
        (fun instrs ->
          let off = Bitio.Writer.length_bits w in
          Coder.Mtf_state.reset state alphabets;
          List.iter
            (Coder.iter_fields (fun s v ->
                 let si = Instr.stream_index s in
                 let r = Coder.Mtf_state.rank_of state si v in
                 Canonical.encode (code_for mtf_per_stream s) w r))
            (Coder.with_sentinel instrs);
          off)
        regions
    in
    (Bitio.Writer.contents w, offsets)

  let decode_region { mtf_per_stream; alphabets } blob ~bit_offset ~bit_end:_ =
    let r = Bitio.Reader.of_string ~start_bit:bit_offset blob in
    let bits = ref 0 and steps = ref 0 in
    let state = Coder.Mtf_state.create alphabets in
    let read stream =
      let rank, b, probes = Canonical.decode (code_for mtf_per_stream stream) r in
      bits := !bits + b;
      (* Walking the recency list costs rank steps on top of the probes. *)
      steps := !steps + probes + rank;
      Coder.Mtf_state.value_at state (Instr.stream_index stream) rank
    in
    let rec go acc =
      let opcode = read Instr.Opcode in
      match Instr.rebuild ~opcode (fun s -> read s) with
      | Error msg -> raise (Bitio.Corrupt_stream ("Coder_split.decode_region: " ^ msg))
      | Ok Instr.Sentinel -> List.rev acc
      | Ok ins -> go (ins :: acc)
    in
    let instrs = go [] in
    (instrs, { Coder.bits = !bits; steps = !steps })

  let table_bits { mtf_per_stream; alphabets } =
    (* Rank codes are cheap to describe, but the alphabets must ship too. *)
    huffman_table_bits mtf_per_stream
    + List.fold_left
        (fun acc stream ->
          let si = Instr.stream_index stream in
          acc + (Coder.stream_value_bits stream * Array.length alphabets.(si)))
        0 Instr.all_streams

  let stream_stats { mtf_per_stream; _ } = huffman_stream_stats mtf_per_stream

  let stream_bits { mtf_per_stream; alphabets } regions =
    let totals = Array.make Coder.stream_count 0 in
    let state = Coder.Mtf_state.create alphabets in
    Array.iter
      (fun instrs ->
        Coder.Mtf_state.reset state alphabets;
        List.iter
          (Coder.iter_fields (fun s v ->
               let si = Instr.stream_index s in
               let r = Coder.Mtf_state.rank_of state si v in
               totals.(si) <- totals.(si) + codeword_bits mtf_per_stream s r))
          (Coder.with_sentinel instrs))
      regions;
    render_stream_bits totals
end
