let check ?profile (p : Prog.t) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in

  (* --- program-level structure ------------------------------------- *)
  (match Prog.find_func p p.Prog.entry with
  | Some _ -> ()
  | None -> err "entry function %s undefined" p.Prog.entry);
  let names = List.sort String.compare (Prog.func_names p) in
  let rec dups = function
    | a :: b :: rest when a = b ->
      err "duplicate function %s" a;
      dups (List.filter (fun n -> n <> a) rest)
    | _ :: rest -> dups rest
    | [] -> ()
  in
  dups names;

  (* --- per-function invariants ------------------------------------- *)
  let check_func (f : Prog.Func.t) =
    let n = Array.length f.blocks in
    if n = 0 then err "%s: function has no blocks" f.name;
    let check_dest what d =
      if d < 0 || d >= n then
        err "%s: %s targets block %d of %d" f.name what d n
    in
    Array.iteri
      (fun i (b : Prog.Block.t) ->
        List.iteri
          (fun j item ->
            match item with
            | Prog.Instr ins -> (
              (* The decompressor-reserved marker encodings must never
                 appear in the IR: they exist only inside compressed
                 streams. *)
              match ins with
              | Instr.Sentinel ->
                err "%s/block %d: stray sentinel marker at item %d" f.name i j
              | Instr.Bsrx _ ->
                err "%s/block %d: stray Bsrx marker at item %d" f.name i j
              | Instr.Jsr { hint = 1; _ } ->
                err "%s/block %d: stray Jsr restore marker at item %d" f.name i j
              | _ when Instr.is_control_transfer ins ->
                err "%s/block %d: control transfer %s in block body" f.name i
                  (Instr.to_string ins)
              | _ -> ())
            | Prog.Load_addr (r, sym) -> (
              if not (Reg.is_valid r) then
                err "%s/block %d: invalid register in load-addr at item %d"
                  f.name i j;
              match sym with
              | Prog.Table_addr tid ->
                if tid < 0 || tid >= Array.length f.tables then
                  err "%s/block %d: load-addr of unknown jump table %d" f.name i
                    tid
              | Prog.Func_addr g ->
                if Prog.find_func p g = None then
                  err "%s/block %d: address of undefined function %s" f.name i g))
          b.items;
        match b.term with
        | Prog.Fallthrough d ->
          check_dest (Printf.sprintf "block %d fallthrough" i) d
        | Prog.Jump d -> check_dest (Printf.sprintf "block %d jump" i) d
        | Prog.Branch (_, r, d1, d2) ->
          if not (Reg.is_valid r) then
            err "%s/block %d: invalid branch register" f.name i;
          check_dest (Printf.sprintf "block %d taken branch" i) d1;
          check_dest (Printf.sprintf "block %d fallthrough branch" i) d2
        | Prog.Call { callee; return_to; _ } ->
          check_dest (Printf.sprintf "block %d call return" i) return_to;
          if return_to <> i + 1 then
            err "%s/block %d: call must return to the next block (got .%d)"
              f.name i return_to;
          if Prog.find_func p callee = None then
            err "%s/block %d: call to undefined function %s" f.name i callee
        | Prog.Call_indirect { return_to; rb; _ } ->
          if not (Reg.is_valid rb) then
            err "%s/block %d: invalid indirect-call register" f.name i;
          check_dest (Printf.sprintf "block %d indirect-call return" i) return_to;
          if return_to <> i + 1 then
            err "%s/block %d: call must return to the next block (got .%d)"
              f.name i return_to
        | Prog.Jump_indirect { table = Some tid; _ } ->
          if tid < 0 || tid >= Array.length f.tables then
            err "%s/block %d: jump through unknown table %d" f.name i tid
        | Prog.Jump_indirect { table = None; _ } | Prog.Return _ | Prog.No_return
          ->
          ())
      f.blocks;
    Array.iteri
      (fun tid tbl ->
        Array.iter
          (fun d -> check_dest (Printf.sprintf "jump table %d entry" tid) d)
          tbl;
        if Array.length tbl = 0 then err "%s: jump table %d is empty" f.name tid)
      f.tables;
    (* Item accounting: the canonical instruction count of a block can
       never be smaller than its item count (every item is at least one
       word), and a function's count is the sum over its blocks. *)
    let sum = ref 0 in
    Array.iteri
      (fun i (b : Prog.Block.t) ->
        let next = if i + 1 < n then Some (i + 1) else None in
        let sz = Prog.Block.size ~next b in
        if sz < List.length b.items then
          err "%s/block %d: size %d below its %d items" f.name i sz
            (List.length b.items);
        sum := !sum + sz)
      f.blocks;
    if !sum <> Prog.func_instr_count f then
      err "%s: block sizes sum to %d, func_instr_count says %d" f.name !sum
        (Prog.func_instr_count f)
  in
  List.iter check_func p.Prog.funcs;

  (* --- profile consistency ----------------------------------------- *)
  (match profile with
  | None -> ()
  | Some prof ->
    let stale =
      Profile.fold
        (fun (fname, b) ~freq:_ ~weight:_ acc ->
          match Prog.find_func p fname with
          | None -> (fname, b, `Func) :: acc
          | Some f ->
            if b < 0 || b >= Array.length f.Prog.Func.blocks then
              (fname, b, `Block) :: acc
            else acc)
        prof []
      |> List.sort compare
    in
    List.iter
      (fun (fname, b, kind) ->
        match kind with
        | `Func -> err "profile names unknown function %s (block %d)" fname b
        | `Block -> err "profile names missing block %s.%d" fname b)
      stale);

  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_exn ?profile p =
  match check ?profile p with
  | Ok () -> ()
  | Error es -> failwith ("Prog_check.check failed:\n" ^ String.concat "\n" es)
