exception Check_failed of { pass : string; errors : string list }

(* --- the standard passes ------------------------------------------- *)

(* Functions whose code contains a setjmp system call. *)
let detect_setjmp_callers (p : Prog.t) =
  let code = Syscall.to_code Syscall.Setjmp in
  List.filter_map
    (fun (f : Prog.Func.t) ->
      let calls =
        Array.exists
          (fun (b : Prog.Block.t) ->
            List.exists
              (function
                | Prog.Instr (Instr.Sys c) -> c = code
                | Prog.Instr _ | Prog.Load_addr _ -> false)
              b.items)
          f.blocks
      in
      if calls then Some f.name else None)
    p.funcs

(* Functions containing an indirect jump with unknown targets; their blocks
   cannot be moved (the jump could target any of them). *)
let unanalysable_funcs (p : Prog.t) =
  List.filter_map
    (fun (f : Prog.Func.t) ->
      let bad =
        Array.exists
          (fun (b : Prog.Block.t) ->
            match b.term with
            | Prog.Jump_indirect { table = None; _ } -> true
            | Prog.Jump_indirect { table = Some _; _ }
            | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _ | Prog.Call _
            | Prog.Call_indirect _ | Prog.Return _ | Prog.No_return ->
              false)
          f.blocks
      in
      if bad then Some f.name else None)
    p.funcs

(* Blocks appended by unswitching have no profile entry: frequency 0, hence
   cold at any θ. *)
let is_cold_or_fresh st cold f b =
  Cold.is_cold cold f b || Profile.freq st.Pass.profile f b = 0

let resolve_pass =
  {
    Pass.name = "resolve";
    descr = "constant propagation resolving unannotated indirect jumps";
    paper = "§6.2";
    requires = [];
    after = [];
    transform =
      (fun st ->
        let prog, sites = Consts.resolve_tables st.Pass.prog in
        { st with Pass.prog; resolved_jumps = sites });
    note =
      (fun st ->
        Printf.sprintf "%d indirect jumps resolved to tables"
          (List.length st.Pass.resolved_jumps));
  }

let cold_pass =
  {
    Pass.name = "cold";
    descr = "cold-block identification at threshold θ";
    paper = "§5";
    requires = [];
    after = [];
    transform =
      (fun st ->
        {
          st with
          Pass.cold =
            Some (Cold.identify st.Pass.prog st.Pass.profile ~theta:st.Pass.options.Pass.theta);
        });
    note =
      (fun st ->
        let cold = Pass.get_cold ~who:"cold" st in
        let n = Cold.max_cold_freq cold in
        Printf.sprintf "cutoff N=%s, %d/%d blocks cold"
          (if n = max_int then "inf" else string_of_int n)
          (Cold.cold_block_count cold)
          (Cold.total_block_count cold));
  }

let unswitch_pass =
  {
    Pass.name = "unswitch";
    descr = "jump-table unswitching of cold analysable dispatches";
    paper = "§6.2";
    requires = [ "cold" ];
    after = [];
    transform =
      (fun st ->
        let cold = Pass.get_cold ~who:"unswitch" st in
        let r = Unswitch.run st.Pass.prog ~is_cold:(Cold.is_cold cold) in
        {
          st with
          Pass.prog = r.Unswitch.prog;
          unswitched = r.Unswitch.rewritten;
          unmatched = r.Unswitch.unmatched;
        });
    note =
      (fun st ->
        Printf.sprintf "%d dispatches unswitched, %d unmatched"
          (List.length st.Pass.unswitched)
          (List.length st.Pass.unmatched));
  }

let exclude_pass =
  {
    Pass.name = "exclude";
    descr = "never-compress set: entry, setjmp callers, unanalysable jumps";
    paper = "§2.2";
    requires = [];
    (* In fallback mode (no unswitching), dispatch blocks and their tables
       stay in place, which is safe — but when unswitch runs, a dispatch
       whose idiom did not match excludes its whole function, so the
       exclusion pass must see unswitch's verdict. *)
    after = [ "unswitch" ];
    transform =
      (fun st ->
        let p = st.Pass.prog in
        let tbl = Hashtbl.create 16 in
        Hashtbl.replace tbl p.Prog.entry ();
        List.iter (fun f -> Hashtbl.replace tbl f ()) (detect_setjmp_callers p);
        List.iter (fun f -> Hashtbl.replace tbl f ()) st.Pass.seed_excluded;
        List.iter (fun f -> Hashtbl.replace tbl f ()) (unanalysable_funcs p);
        List.iter (fun f -> Hashtbl.replace tbl f ()) st.Pass.unmatched;
        let sorted =
          Hashtbl.fold (fun k () acc -> k :: acc) tbl []
          |> List.sort String.compare
        in
        { st with Pass.excluded = Some sorted });
    note =
      (fun st ->
        Printf.sprintf "%d functions excluded"
          (List.length (Pass.get_excluded ~who:"exclude" st)));
  }

let regions_pass =
  {
    Pass.name = "regions";
    descr = "compressible-region formation and packing";
    paper = "§4";
    requires = [ "cold"; "exclude" ];
    after = [];
    transform =
      (fun st ->
        let cold = Pass.get_cold ~who:"regions" st in
        let excluded = Pass.get_excluded ~who:"regions" st in
        let tbl = Hashtbl.create 16 in
        List.iter (fun f -> Hashtbl.replace tbl f ()) excluded;
        let compressible f b =
          (not (Hashtbl.mem tbl f)) && is_cold_or_fresh st cold f b
        in
        let o = st.Pass.options in
        let regions =
          Regions.build st.Pass.prog ~compressible
            ~params:
              {
                Regions.k_bytes = o.Pass.k_bytes;
                gamma = o.Pass.gamma;
                pack = o.Pass.pack;
                strategy = o.Pass.regions_strategy;
              }
        in
        { st with Pass.regions = Some regions });
    note =
      (fun st ->
        let r = Pass.get_regions ~who:"regions" st in
        Printf.sprintf "%d regions, %d entries, %d blocks rejected"
          (Array.length r.Regions.regions)
          (Hashtbl.length r.Regions.entries)
          r.Regions.rejected_blocks);
  }

let buffer_safe_pass =
  {
    Pass.name = "buffer-safe";
    descr = "buffer-safety analysis of call sites in compressed code";
    paper = "§6.1";
    requires = [ "regions" ];
    after = [];
    transform =
      (fun st ->
        let regions = Pass.get_regions ~who:"buffer-safe" st in
        let p = st.Pass.prog in
        let has_compressed fname =
          match Prog.find_func p fname with
          | None -> false
          | Some f ->
            let any = ref false in
            Array.iteri
              (fun i _ ->
                if Regions.block_region regions fname i <> None then any := true)
              f.Prog.Func.blocks;
            !any
        in
        let o = st.Pass.options in
        let bsafe =
          if not o.Pass.use_buffer_safe then
            (* With the optimisation disabled, treat everything as unsafe so
               every outgoing call goes through CreateStub. *)
            Buffer_safe.analyze p ~has_compressed:(fun _ -> true)
          else if o.Pass.sharp_buffer_safe then
            Buffer_safe.analyze_sharp p ~has_compressed
          else Buffer_safe.analyze p ~has_compressed
        in
        { st with Pass.buffer_safe = Some bsafe });
    note =
      (fun st ->
        let o = st.Pass.options in
        if not o.Pass.use_buffer_safe then "disabled (all unsafe)"
        else
          let safe =
            List.length
              (Buffer_safe.safe_functions
                 (Pass.get_buffer_safe ~who:"buffer-safe" st))
          in
          if not o.Pass.sharp_buffer_safe then
            Printf.sprintf "%d buffer-safe functions" safe
          else
            (* Recompute the conservative answer so the trace shows what the
               sharpening bought. *)
            let regions = Pass.get_regions ~who:"buffer-safe" st in
            let p = st.Pass.prog in
            let has_compressed fname =
              match Prog.find_func p fname with
              | None -> false
              | Some f ->
                let any = ref false in
                Array.iteri
                  (fun i _ ->
                    if Regions.block_region regions fname i <> None then
                      any := true)
                  f.Prog.Func.blocks;
                !any
            in
            let conservative =
              List.length
                (Buffer_safe.safe_functions
                   (Buffer_safe.analyze p ~has_compressed))
            in
            Printf.sprintf "%d buffer-safe functions (sharp; %+d vs conservative)"
              safe (safe - conservative));
  }

let rewrite_pass =
  {
    Pass.name = "rewrite";
    descr = "stub emission, compression and decompressor image build";
    paper = "§2–3";
    requires = [ "regions"; "buffer-safe" ];
    after = [];
    transform =
      (fun st ->
        let o = st.Pass.options in
        let sq =
          Rewrite.build st.Pass.prog
            ~regions:(Pass.get_regions ~who:"rewrite" st)
            ~buffer_safe:(Pass.get_buffer_safe ~who:"rewrite" st)
            ~decomp_words:o.Pass.decomp_words ~max_stubs:o.Pass.max_stubs
            ~coder:o.Pass.coder ()
        in
        { st with Pass.squashed = Some sq });
    note =
      (fun st ->
        let sq = Pass.get_squashed ~who:"rewrite" st in
        Printf.sprintf "%d regions compressed, %d stub words, %d-word buffer"
          (Array.length sq.Rewrite.images)
          sq.Rewrite.entry_stub_words sq.Rewrite.buffer_words);
  }

let lint_pass =
  {
    Pass.name = "lint";
    descr = "whole-image static verification of the squashed executable";
    paper = "§2–6";
    requires = [ "rewrite" ];
    after = [];
    transform =
      (fun st ->
        let sq = Pass.get_squashed ~who:"lint" st in
        let diags = Verify.run sq in
        (match Verify.errors diags with
        | [] -> ()
        | errs ->
          raise
            (Check_failed
               { pass = "lint"; errors = List.map Verify.message errs }));
        st);
    note =
      (fun st ->
        let diags = Verify.run (Pass.get_squashed ~who:"lint" st) in
        Printf.sprintf "0 errors, %d warnings" (List.length diags));
  }

let prove_pass =
  {
    Pass.name = "prove";
    descr = "symbolic equivalence proof of every region against its rewrite";
    paper = "§2–3";
    requires = [ "rewrite" ];
    after = [ "lint" ];
    transform =
      (fun st ->
        let sq = Pass.get_squashed ~who:"prove" st in
        (* Two slots are enough to exercise the slot-relative rebias of
           every external displacement on top of the slot-0 layout. *)
        let r = Prove.run ~slots:2 sq in
        (match r.Prove.failures with
        | [] -> ()
        | fs ->
          raise
            (Check_failed
               { pass = "prove"; errors = List.map Prove.failure_message fs }));
        st);
    note =
      (fun st ->
        let r = Prove.run ~slots:2 (Pass.get_squashed ~who:"prove" st) in
        Printf.sprintf "%d/%d block proofs, %d conservative" r.Prove.proved
          r.Prove.blocks r.Prove.conservative);
  }

let standard =
  [ resolve_pass; cold_pass; unswitch_pass; exclude_pass; regions_pass;
    buffer_safe_pass; rewrite_pass ]

let skip names passes =
  List.filter (fun (p : Pass.t) -> not (List.mem p.Pass.name names)) passes

let of_options (o : Pass.options) =
  if o.Pass.unswitch then standard else skip [ "unswitch" ] standard

let by_name name =
  List.find_opt
    (fun (p : Pass.t) -> p.Pass.name = name)
    (standard @ [ lint_pass; prove_pass ])

let names passes = List.map (fun (p : Pass.t) -> p.Pass.name) passes

(* --- execution ------------------------------------------------------ *)

type run_stats = { passes : Pass.stats list; total_s : float }

let validate_order passes =
  let all = names passes in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (p : Pass.t) ->
      if Hashtbl.mem seen p.Pass.name then
        invalid_arg
          (Printf.sprintf "Pipeline.execute: pass %S appears twice" p.Pass.name);
      List.iter
        (fun r ->
          if not (Hashtbl.mem seen r) then
            invalid_arg
              (Printf.sprintf
                 "Pipeline.execute: pass %S requires %S to run earlier"
                 p.Pass.name r))
        p.Pass.requires;
      List.iter
        (fun a ->
          if List.mem a all && not (Hashtbl.mem seen a) then
            invalid_arg
              (Printf.sprintf
                 "Pipeline.execute: pass %S must come after %S" p.Pass.name a))
        p.Pass.after;
      Hashtbl.replace seen p.Pass.name ())
    passes

let check_state (st : Pass.state) =
  let ir =
    match Prog_check.check ~profile:st.Pass.profile st.Pass.prog with
    | Ok () -> []
    | Error es -> es
  in
  let image =
    match st.Pass.squashed with
    | None -> []
    | Some sq -> (
      match Check.check sq with Ok () -> [] | Error es -> es)
  in
  match ir @ image with [] -> Ok () | es -> Error es

let execute ?(check_each = false) ?trace ?obs ~passes st =
  validate_order passes;
  let emit line = match trace with Some f -> f line | None -> () in
  let st, rev_stats =
    List.fold_left
      (fun (st, acc) (p : Pass.t) ->
        let instrs_before = Prog.instr_count st.Pass.prog in
        let words_before = Pass.footprint st in
        let t0 = Obs.Clock.now () in
        let g0 = Gc.quick_stat () in
        (match obs with
        | None -> ()
        | Some o ->
          Obs.event o
            { ts = Obs.Event.Mono t0;
              payload = Obs.Event.Pass_begin { name = p.Pass.name } });
        let st' = p.Pass.transform st in
        let elapsed_s = Obs.Clock.now () -. t0 in
        let g1 = Gc.quick_stat () in
        let alloc_words =
          int_of_float
            (Float.max 0.0
               (g1.Gc.minor_words +. g1.Gc.major_words -. g1.Gc.promoted_words
               -. (g0.Gc.minor_words +. g0.Gc.major_words
                  -. g0.Gc.promoted_words)))
        in
        let major_collections = g1.Gc.major_collections - g0.Gc.major_collections in
        (match obs with
        | None -> ()
        | Some o ->
          Obs.event o
            { ts = Obs.Event.Mono (t0 +. elapsed_s);
              payload = Obs.Event.Pass_end { name = p.Pass.name; elapsed_s } };
          Obs.incr o "pipeline.passes_run";
          Obs.observe o "pipeline.pass_alloc_words" alloc_words;
          Obs.max_gauge o "gc.top_heap_words" g1.Gc.top_heap_words);
        (if check_each then
           match check_state st' with
           | Ok () -> ()
           | Error errors ->
             raise (Check_failed { pass = p.Pass.name; errors }));
        let s =
          {
            Pass.pass_name = p.Pass.name;
            elapsed_s;
            instrs_before;
            instrs_after = Prog.instr_count st'.Pass.prog;
            words_before;
            words_after = Pass.footprint st';
            alloc_words;
            major_collections;
            note = p.Pass.note st';
          }
        in
        emit
          (Printf.sprintf "pass %-12s %7.2f ms  %6d instrs (%+d)  %6d words (%+d)  %s"
             s.Pass.pass_name (1000.0 *. s.Pass.elapsed_s) s.Pass.instrs_after
             (s.Pass.instrs_after - s.Pass.instrs_before)
             s.Pass.words_after
             (s.Pass.words_after - s.Pass.words_before)
             s.Pass.note);
        (st', s :: acc))
      (st, []) passes
  in
  let stats = List.rev rev_stats in
  let total_s =
    List.fold_left (fun acc (s : Pass.stats) -> acc +. s.Pass.elapsed_s) 0.0 stats
  in
  (st, { passes = stats; total_s })

(* --- stats rendering ------------------------------------------------ *)

let render_stats rs =
  let t =
    Report.Table.create ~title:"pipeline passes"
      [ ("pass", Report.Table.Left); ("time (ms)", Report.Table.Right);
        ("share", Report.Table.Right); ("instrs", Report.Table.Right);
        ("Δinstrs", Report.Table.Right); ("words", Report.Table.Right);
        ("Δwords", Report.Table.Right); ("alloc (kw)", Report.Table.Right);
        ("note", Report.Table.Left) ]
  in
  List.iter
    (fun (s : Pass.stats) ->
      let share =
        if rs.total_s > 0.0 then s.Pass.elapsed_s /. rs.total_s else 0.0
      in
      Report.Table.add_row t
        [ s.Pass.pass_name;
          Report.Table.cell_float ~decimals:2 (1000.0 *. s.Pass.elapsed_s);
          Report.Table.cell_percent ~decimals:1 share;
          string_of_int s.Pass.instrs_after;
          Printf.sprintf "%+d" (s.Pass.instrs_after - s.Pass.instrs_before);
          string_of_int s.Pass.words_after;
          Printf.sprintf "%+d" (s.Pass.words_after - s.Pass.words_before);
          Report.Table.cell_float ~decimals:1
            (float_of_int s.Pass.alloc_words /. 1000.0);
          s.Pass.note ])
    rs.passes;
  Report.Table.add_separator t;
  Report.Table.add_row t
    [ "total"; Report.Table.cell_float ~decimals:2 (1000.0 *. rs.total_s);
      ""; ""; ""; ""; ""; ""; "" ];
  Report.Table.render t

let stats_json rs =
  let open Report.Json in
  Obj
    [ ("total_s", Float rs.total_s);
      ( "passes",
        List
          (List.map
             (fun (s : Pass.stats) ->
               Obj
                 [ ("name", String s.Pass.pass_name);
                   ("elapsed_s", Float s.Pass.elapsed_s);
                   ("instrs_before", Int s.Pass.instrs_before);
                   ("instrs_after", Int s.Pass.instrs_after);
                   ("words_before", Int s.Pass.words_before);
                   ("words_after", Int s.Pass.words_after);
                   ("alloc_words", Int s.Pass.alloc_words);
                   ("major_collections", Int s.Pass.major_collections);
                   ("note", String s.Pass.note) ])
             rs.passes) ) ]
