(** Compressible-region construction (paper, Section 4).

    Cold blocks are partitioned into regions of bounded decompressed size.
    An initial set of regions is grown by depth-first search over the CFG
    (each tree drawn from a single function, at most [K] bytes of
    instructions); a region is kept only if it is {e profitable} —
    [E < (1 − γ)·I] where [I] is the region's instruction count and [E] the
    instructions its entry stubs will cost.  A greedy packing pass then
    repeatedly merges the pair of regions with the greatest stub savings
    that still fits the bound (packed regions may span functions).

    The module also computes the {e entry points}: the region blocks that
    need an entry stub because control can reach them from outside their
    region — an intra-function CFG predecessor in another region or in
    never-compressed code, a function entry reachable by calls or through a
    taken address, or a target of a retained jump table. *)

type region = {
  id : int;
  blocks : (string * int) list;  (** In buffer-image layout order. *)
}

type t = {
  regions : region array;
  region_of : (string * int, int) Hashtbl.t;
  entries : (string * int, unit) Hashtbl.t;
  rejected_blocks : int;  (** Compressible blocks left out as unprofitable. *)
}

type strategy =
  [ `Dfs  (** The paper's depth-first region growth. *)
  | `Linear  (** Consecutive blocks in layout order (a future-work
                 alternative). *) ]

type packer =
  [ `Incremental
    (** Indexed facts and a candidate-pair heap; after each merge only the
        pairs the merge touched are re-evaluated.  The default. *)
  | `Rescan
    (** Recompute every fact and scan all region pairs each round — the
        executable specification of the greedy merge, quadratic per round.
        Kept as the equivalence-regression reference. *) ]

type params = {
  k_bytes : int;  (** Runtime-buffer size bound, default 512. *)
  gamma : float;  (** Assumed compression factor, default 0.66. *)
  pack : bool;  (** Enable the packing pass. *)
  strategy : strategy;
}

val default_params : params

val build :
  ?packer:packer ->
  Prog.t ->
  compressible:(string -> int -> bool) ->
  params:params ->
  t
(** Both packers produce the same partition; [`Rescan] exists for
    regression tests and before/after timing. *)

val entry_count_if_region : Prog.t -> (string * int) list -> int
(** [E] of the §4 profitability test: how many of [blocks] would need an
    entry stub if they formed one region — the same predicate [build] uses
    both when pricing a tentative region and when computing the final entry
    set. *)

val region_blocks : t -> int -> (string * int) list
val block_region : t -> string -> int -> int option
val is_entry : t -> string -> int -> bool

val compressed_instr_count : Prog.t -> t -> int
(** Static instructions inside regions (the paper's "compressible code"
    plotted in Figure 4). *)
