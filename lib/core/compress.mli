(** Compression of instruction sequences, with four interchangeable
    backends dispatched through the {!Coder.S} signature:

    - [`Split_stream] (the paper's scheme, Section 3): each of the 15
      instruction field types gets its own canonical Huffman code, built
      over all compressible regions at once.  Because the opcode determines
      the remaining fields of an instruction, the per-stream codeword
      sequences merge into a single bitstream per region.
    - [`Split_stream_mtf] (the paper's move-to-front variant): each stream
      is move-to-front transformed before Huffman coding.  The recency
      lists reset at every region boundary so regions stay independently
      decodable.  It trades better compression on some streams for a
      larger, slower decompressor — exactly the trade-off the paper notes.
    - [`Lzss] (the "other algorithms" of the future-work section): the
      encoded instruction words of a region, as little-endian bytes,
      compressed with byte-oriented LZSS.
    - [`Context] (beyond the paper): order-1 context modeling.  Opcodes are
      conditioned on the previous opcode, every other stream on the current
      opcode, and register streams are move-to-front coded over per-region
      recency lists that never ship.  See {!Coder_context}.

    Each region's stream ends with an encoded [Sentinel], at which
    decompression stops (paper, Section 2.1). *)

type backend = [ `Split_stream | `Split_stream_mtf | `Lzss | `Context ]

type work = Coder.work = {
  bits : int;  (** Bits consumed from the blob. *)
  steps : int;  (** Model steps: MTF walks, context-table picks, LZSS copies. *)
}

type codes
(** Pure data (marshal-safe): a backend tag plus its model. *)

val build_codes : ?backend:backend -> Instr.t list array -> codes
(** Build the coder model from all region instruction sequences (the
    sentinels are added internally).  Default backend: [`Split_stream]. *)

val backend_of : codes -> backend

val coder_name : codes -> string
(** The backend's stable lower-case name: "huffman", "mtf", "lzss" or
    "context". *)

val encode_regions : codes -> Instr.t list array -> string * int array
(** [(blob, offsets)]: the compressed bytes and each region's starting bit
    offset (always byte-aligned for [`Lzss]). *)

val decode_region :
  codes -> string -> bit_offset:int -> ?bit_end:int -> unit -> Instr.t list * work
(** Decode one region (the sentinel is consumed but not returned).  Returns
    the instructions and the decode {!work}, which the runtime converts
    into cycles.  [bit_end] bounds the region's bits (required information
    for [`Lzss]; the Huffman-family backends stop at the sentinel).
    @raise Failure on a corrupt stream. *)

val table_bits : codes -> int
(** Footprint of the code representations that must ship with the blob:
    [N]/[D] arrays per code (plus the move-to-front alphabets and the
    context ids); 0 for [`Lzss]. *)

val compressed_bits : codes -> Instr.t list array -> int
(** Total encoded size of the given regions in bits (whole bytes),
    excluding tables. *)

val stream_stats : codes -> (string * int * float) list
(** Per stream: name, distinct symbols, max codeword length.  Empty for
    [`Lzss]. *)

val stream_bits : codes -> Instr.t list array -> (string * int) list
(** Encoded bits contributed by each stream over the given regions
    (excluding tables); streams that contribute nothing are omitted.
    Empty for [`Lzss], which has no stream structure. *)

val mtf_gain_bits : Instr.t list array -> (string * int) list
(** For each stream, the change in total Huffman-coded bits if the stream
    were move-to-front transformed first (negative = MTF helps).  Used by
    the ablation bench. *)
