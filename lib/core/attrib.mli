(** Per-region runtime-overhead attribution (the paper's Section 7
    analysis as a first-class artifact).

    Given a squash result and the {!Runtime.stats} of a timing run,
    break the decompression overhead down by region: how often each
    region was decompressed, how many simulated cycles that cost, and
    how that relates to the region's static size and coldness.  The
    totals reconcile exactly with the aggregate stats — [sum
    decompressions = stats.decompressions] and [sum cycles = sum
    stats.per_region_cycles]. *)

type row = {
  rid : int;
  blocks : int;  (** Blocks packed into the region. *)
  stream_words : int;  (** Stored (marker-form) words fed to the coder. *)
  buffer_words : int;  (** Words materialised per decompression. *)
  bits : int;  (** Compressed size of the region in the blob, bits. *)
  max_freq : int;
      (** Hottest profile frequency among the region's blocks (0 when no
          profile was supplied): the region's "coldness". *)
  decompressions : int;
  cycles : int;  (** Simulated cycles charged decompressing this region. *)
  share : float;  (** [cycles] / total overhead cycles (0 if none). *)
  funcs : string list;  (** Distinct functions contributing blocks. *)
}

type t = {
  rows : row list;  (** Sorted by [cycles] descending, then region id. *)
  total_decompressions : int;
  total_cycles : int;  (** Total decompression-overhead cycles. *)
}

val compute : ?profile:Profile.t -> Squash.result -> Runtime.stats -> t

val render : t -> string
(** Aligned table, one row per region plus a totals line. *)

val to_json : t -> Report.Json.t
