(** Per-region runtime-overhead attribution (the paper's Section 7
    analysis as a first-class artifact).

    Given a squash result and the {!Runtime.stats} of a timing run,
    break the decompression overhead down by region: how often each
    region was decompressed, how many simulated cycles that cost, and
    how that relates to the region's static size and coldness.  The
    totals reconcile exactly with the aggregate stats — [sum
    decompressions = stats.decompressions] and [sum cycles = sum
    stats.per_region_cycles]. *)

type row = {
  rid : int;
  blocks : int;  (** Blocks packed into the region. *)
  stream_words : int;  (** Stored (marker-form) words fed to the coder. *)
  buffer_words : int;  (** Words materialised per decompression. *)
  bits : int;  (** Compressed size of the region in the blob, bits. *)
  max_freq : int;
      (** Hottest profile frequency among the region's blocks (0 when no
          profile was supplied): the region's "coldness". *)
  decompressions : int;
  cycles : int;  (** Simulated cycles charged decompressing this region. *)
  share : float;  (** [cycles] / total overhead cycles (0 if none). *)
  funcs : string list;  (** Distinct functions contributing blocks. *)
}

type t = {
  rows : row list;  (** Sorted by [cycles] descending, then region id. *)
  total_decompressions : int;
  total_cycles : int;  (** Total decompression-overhead cycles. *)
}

val compute : ?profile:Profile.t -> Squash.result -> Runtime.stats -> t

val render : t -> string
(** Aligned table, one row per region plus a totals line. *)

val to_json :
  ?params:(string * Report.Json.t) list -> ?run_cycles:int -> t ->
  Report.Json.t
(** Schema [pgcc-attrib-v1].  [params] records provenance (workload,
    theta, ...) and [run_cycles] the timing run's total simulated cycles;
    both make the saved file usable as one side of a {!diff}. *)

(** A saved attribution, as reloaded from [squashc attrib --json] output —
    the subset that supports region-by-region comparison of two runs. *)
module Saved : sig
  type row = { rid : int; decompressions : int; cycles : int; share : float }

  type t = {
    rows : row list;
    total_decompressions : int;
    total_cycles : int;
    run_cycles : int option;
        (** Total simulated cycles of the timing run, when recorded. *)
    params : (string * string) list;
        (** Provenance (workload, theta, ...) as printable strings. *)
  }

  val of_json : Report.Json.t -> (t, string) result
  val load_file : string -> (t, string) result

  val overhead_share : t -> float option
  (** [total_cycles / run_cycles] — the decompression overhead as a share
      of the whole run; [None] when [run_cycles] was not recorded. *)
end

val to_saved : ?run_cycles:int -> ?params:(string * string) list -> t ->
  Saved.t

type delta = {
  drid : int;
  cycles_a : int;
  cycles_b : int;
  share_a : float;
  share_b : float;
  decomp_a : int;
  decomp_b : int;
}

val diff : Saved.t -> Saved.t -> delta list
(** Union of both runs' regions (absent side contributes zeros), sorted by
    absolute cycle delta descending, then region id. *)

val render_diff : Saved.t -> Saved.t -> string
(** Signed per-region table (regions idle on both sides are omitted)
    plus, when both sides recorded [run_cycles], the overall
    overhead-share-of-run shift. *)
