(** An error-collecting IR validator for pipeline debugging.

    [Prog.validate] stops at the first violation; this checker keeps going
    and reports {e every} violation, so a [--check-each] run pinpoints all
    the damage a bad pass did at the pass that introduced it rather than at
    the final image check.  Beyond the structural invariants (terminators
    target real blocks, entry function exists, calls return to the next
    block, jump tables in range) it rejects the decompressor-reserved
    marker encodings — [Sentinel], [Bsrx], [Jsr] with hint 1 — anywhere in
    a block body: those exist only inside compressed streams, and their
    appearance in the IR means a transform leaked an image word back into
    the program.

    When a profile is supplied, every profiled block must still exist in
    the program — a stale index means a pass renumbered or dropped blocks
    without rebuilding the profile. *)

val check : ?profile:Profile.t -> Prog.t -> (unit, string list) result
(** All violations found, or [Ok ()]. *)

val check_exn : ?profile:Profile.t -> Prog.t -> unit
(** @raise Failure with the violations joined by newlines. *)
