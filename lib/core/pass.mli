(** The pass abstraction underlying the squash pipeline.

    The paper's tool is a sequence of distinct transformations — cold-block
    identification (§5), jump-table unswitching (§6.2), region formation
    (§4), buffer-safe analysis (§6.1) and the stub/decompressor rewrite
    (§2–3).  Each becomes a named {!t} over an explicit {!state} record
    that carries the program, the profile and every accumulated analysis.
    {!Pipeline} composes, times and validates them; {!Squash.run} is a thin
    wrapper over the standard pass list. *)

type options = {
  theta : float;  (** Cold-code threshold θ ∈ [0, 1]. *)
  k_bytes : int;  (** Runtime-buffer bound K (default 512). *)
  gamma : float;  (** Assumed compression factor for profitability. *)
  pack : bool;  (** Region packing pass (Section 4). *)
  use_buffer_safe : bool;  (** Buffer-safe call optimisation (Section 6.1). *)
  sharp_buffer_safe : bool;
      (** Use the sharpened buffer-safe analysis
          ({!Buffer_safe.analyze_sharp}): indirect calls contribute their
          resolved candidate-target edges instead of poisoning the whole
          call chain.  Only meaningful with [use_buffer_safe]; default
          off. *)
  unswitch : bool;  (** Jump-table unswitching (Section 6.2). *)
  decomp_words : int;
  max_stubs : int;
  coder : Compress.backend;  (** Compression backend (Section 3 and its
                                 variants); default [`Split_stream]. *)
  regions_strategy : Regions.strategy;  (** Region construction algorithm. *)
}

val default_options : options
(** θ = 0.0, K = 512, γ = 0.66, all optimisations on, split-stream
    Huffman. *)

type state = {
  prog : Prog.t;  (** The working program; unswitching replaces it. *)
  profile : Profile.t;
  options : options;
  seed_excluded : string list;
      (** Caller-supplied setjmp callers (call sites hidden behind
          indirection that the syscall scan cannot see). *)
  original_words : int;  (** Footprint of the input program, fixed at
                             {!init} time. *)
  cold : Cold.t option;
  resolved_jumps : (string * int) list;
      (** [(func, block)] sites whose [table = None] indirect jump the
          resolve pass annotated with its inferred jump table. *)
  unswitched : (string * int) list;
  unmatched : string list;
  excluded : string list option;  (** [Some l] once exclusions ran;
                                      sorted. *)
  regions : Regions.t option;
  buffer_safe : Buffer_safe.t option;
  squashed : Rewrite.t option;
}

val init :
  ?options:options -> ?setjmp_callers:string list -> Prog.t -> Profile.t ->
  state
(** The state every pipeline starts from: no analyses computed yet. *)

type t = {
  name : string;  (** Unique within a pipeline; used for skipping,
                      ordering constraints and stats. *)
  descr : string;
  paper : string;  (** Which paper section the pass implements. *)
  requires : string list;
      (** Hard prerequisites: these passes must appear earlier in the
          pipeline or {!Pipeline.execute} rejects the pass list. *)
  after : string list;
      (** Soft ordering: if one of these passes is present anywhere in the
          pipeline, it must come before this one. *)
  transform : state -> state;
  note : state -> string;
      (** One-line summary of what the pass did, read off the post-state
          (shown by [--trace-passes] and recorded in {!stats}). *)
}

type stats = {
  pass_name : string;
  elapsed_s : float;  (** Monotonic wall-clock seconds spent in
                          [transform]. *)
  instrs_before : int;  (** [Prog.instr_count] of the working program. *)
  instrs_after : int;
  words_before : int;  (** {!footprint} — program text words, or the full
                           squashed footprint once the rewrite ran. *)
  words_after : int;
  alloc_words : int;
      (** Approximate heap words allocated by [transform]
          ([Gc.quick_stat] delta on the executing domain). *)
  major_collections : int;
      (** Major GC cycles that completed while [transform] ran. *)
  note : string;
}

val footprint : state -> int
(** The current size in words: [Rewrite.total_words] of the squashed image
    when present, [Prog.text_words] of the working program otherwise. *)

val get_cold : who:string -> state -> Cold.t
val get_regions : who:string -> state -> Regions.t
val get_buffer_safe : who:string -> state -> Buffer_safe.t
val get_excluded : who:string -> state -> string list
val get_squashed : who:string -> state -> Rewrite.t
(** Accessors that fail with [Invalid_argument] naming [who] and the
    missing pass when the analysis has not been computed. *)
