let gmean values =
  let positive = List.filter (fun v -> v > 0.0) values in
  match positive with
  | [] -> 0.0
  | _ :: _ ->
    let n = float_of_int (List.length positive) in
    exp (List.fold_left (fun acc v -> acc +. log v) 0.0 positive /. n)

module Table = struct
  type align = Left | Right

  type t = {
    title : string;
    headers : (string * align) list;
    mutable rows : [ `Row of string list | `Sep ] list;  (* reversed *)
  }

  let create ~title headers = { title; headers; rows = [] }

  let add_row t cells =
    if List.length cells <> List.length t.headers then
      invalid_arg "Report.Table.add_row: wrong number of cells";
    t.rows <- `Row cells :: t.rows

  let add_separator t = t.rows <- `Sep :: t.rows

  let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
  let cell_percent ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (100.0 *. v)

  let render t =
    let rows = List.rev t.rows in
    let ncols = List.length t.headers in
    let widths = Array.make ncols 0 in
    List.iteri (fun i (h, _) -> widths.(i) <- String.length h) t.headers;
    List.iter
      (function
        | `Sep -> ()
        | `Row cells ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
      rows;
    let buf = Buffer.create 1024 in
    let pad align width s =
      let fill = String.make (max 0 (width - String.length s)) ' ' in
      match align with Left -> s ^ fill | Right -> fill ^ s
    in
    let total_width =
      Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
    in
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make total_width '=');
    Buffer.add_char buf '\n';
    List.iteri
      (fun i (h, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align widths.(i) h))
      t.headers;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n';
    List.iter
      (function
        | `Sep ->
          Buffer.add_string buf (String.make total_width '-');
          Buffer.add_char buf '\n'
        | `Row cells ->
          List.iteri
            (fun i c ->
              if i > 0 then Buffer.add_string buf "  ";
              let _, align = List.nth t.headers i in
              Buffer.add_string buf (pad align widths.(i) c))
            cells;
          Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec add buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        (* %.17g is lossless for doubles; trim the common integral case. *)
        let s = Printf.sprintf "%.17g" f in
        Buffer.add_string buf s
      else Buffer.add_string buf "null"
    | String s -> add_escaped buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    add buf t;
    Buffer.contents buf

  (* A recursive-descent parser for the same subset [to_string] emits
     (all of JSON minus \u escapes beyond BMP handling: we decode \uXXXX
     as a raw byte triple only for ASCII, which is all the writer above
     ever produces).  Numbers parse to [Int] when they are integral
     literals that fit in an OCaml int, [Float] otherwise, so a
     write/parse round trip preserves the constructor for every document
     the writer can produce. *)
  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> fail "bad \\u escape"
             in
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> fail "bad escape");
          go ()
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let integral = ref true in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
        | Some ('.' | 'e' | 'E') ->
          integral := false;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      let lit = String.sub s start (!pos - start) in
      if !integral then
        match int_of_string_opt lit with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "bad number")
      else
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items := parse_value () :: !items;
              go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (Stdlib.List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let fields = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields := field () :: !fields;
              go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (Stdlib.List.rev !fields)
        end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character %C" c)
    in
    match parse_value () with
    | v ->
      skip_ws ();
      if !pos < n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
    | exception Parse_error msg -> Error msg

  let member name = function
    | Obj fields -> Stdlib.List.assoc_opt name fields
    | _ -> None

  let to_float_opt = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None
end

module Stats = struct
  let mean = function
    | [] -> 0.0
    | xs ->
      Stdlib.List.fold_left ( +. ) 0.0 xs /. float_of_int (Stdlib.List.length xs)

  (* Sample (n-1) standard deviation; 0 for fewer than two samples. *)
  let stddev xs =
    match xs with
    | [] | [ _ ] -> 0.0
    | xs ->
      let m = mean xs in
      let n = float_of_int (Stdlib.List.length xs) in
      sqrt
        (Stdlib.List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. (n -. 1.0))

  (* Two-sided 97.5th-percentile Student t critical values by degrees of
     freedom; beyond the table the normal approximation is within 2%. *)
  let t_table =
    [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
       2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
       2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

  let t_crit95 df =
    if df < 1 then t_table.(0)
    else if df <= Array.length t_table then t_table.(df - 1)
    else 1.96

  let ci95 xs =
    match xs with
    | [] | [ _ ] -> 0.0
    | xs ->
      let n = Stdlib.List.length xs in
      t_crit95 (n - 1) *. stddev xs /. sqrt (float_of_int n)

  (* Welch's unequal-variance t statistic and its Welch–Satterthwaite
     degrees of freedom.  Needs at least two samples on each side. *)
  let welch_t xs ys =
    let nx = Stdlib.List.length xs and ny = Stdlib.List.length ys in
    if nx < 2 || ny < 2 then None
    else begin
      let vx = stddev xs ** 2.0 and vy = stddev ys ** 2.0 in
      let fx = float_of_int nx and fy = float_of_int ny in
      let sx = vx /. fx and sy = vy /. fy in
      let se2 = sx +. sy in
      if se2 <= 0.0 then
        (* Zero variance on both sides: any difference in means is exact. *)
        if mean xs = mean ys then Some (0.0, nx + ny - 2)
        else Some (Float.infinity, nx + ny - 2)
      else begin
        let t = (mean ys -. mean xs) /. sqrt se2 in
        let denom =
          (if vx > 0.0 then sx ** 2.0 /. (fx -. 1.0) else 0.0)
          +. if vy > 0.0 then sy ** 2.0 /. (fy -. 1.0) else 0.0
        in
        let df =
          if denom <= 0.0 then nx + ny - 2
          else max 1 (int_of_float (se2 ** 2.0 /. denom))
        in
        Some (t, df)
      end
    end

  (* Two-sided Welch test at 95%: are the two sample means distinguishable
     from noise?  [None]-producing inputs (a single sample on either side)
     report [true] — with no variance estimate every difference counts,
     which is the conservative choice for a regression gate. *)
  let significant xs ys =
    match welch_t xs ys with
    | None -> true
    | Some (t, df) -> Float.abs t > t_crit95 df
end

module Chart = struct
  type t = {
    title : string;
    x_labels : string list;
    height : int;
    mutable series : (string * float list) list;  (* reversed *)
  }

  let create ~title ~x_labels ~height () = { title; x_labels; height; series = [] }

  let add_series t ~name values =
    if List.length values <> List.length t.x_labels then
      invalid_arg "Report.Chart.add_series: wrong number of points";
    t.series <- (name, values) :: t.series

  let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

  let render t =
    let series = List.rev t.series in
    let all_values =
      List.concat_map (fun (_, vs) -> List.filter (fun v -> not (Float.is_nan v)) vs) series
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n';
    (match all_values with
    | [] -> Buffer.add_string buf "  (no data)\n"
    | _ :: _ ->
      let vmin = List.fold_left min infinity all_values in
      let vmax = List.fold_left max neg_infinity all_values in
      let span = if vmax -. vmin < 1e-9 then 1.0 else vmax -. vmin in
      let nx = List.length t.x_labels in
      let col_width = 7 in
      let row_of v =
        int_of_float
          (Float.round ((v -. vmin) /. span *. float_of_int (t.height - 1)))
      in
      let grid = Array.make_matrix t.height (nx * col_width) ' ' in
      List.iteri
        (fun si (_, vs) ->
          let mark = marks.(si mod Array.length marks) in
          List.iteri
            (fun xi v ->
              if not (Float.is_nan v) then begin
                let r = t.height - 1 - row_of v in
                let c = (xi * col_width) + (col_width / 2) in
                if grid.(r).(c) = ' ' then grid.(r).(c) <- mark
                else grid.(r).(c) <- '?'  (* collision *)
              end)
            vs)
        series;
      for r = 0 to t.height - 1 do
        let frac = float_of_int (t.height - 1 - r) /. float_of_int (t.height - 1) in
        let label = vmin +. (frac *. span) in
        Buffer.add_string buf (Printf.sprintf "%10.3f |" label);
        Buffer.add_string buf (String.init (nx * col_width) (fun c -> grid.(r).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (String.make 12 ' ');
      Buffer.add_string buf (String.make (nx * col_width) '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make 12 ' ');
      List.iter
        (fun l ->
          let l = if String.length l > col_width - 1 then String.sub l 0 (col_width - 1) else l in
          Buffer.add_string buf l;
          Buffer.add_string buf (String.make (col_width - String.length l) ' '))
        t.x_labels;
      Buffer.add_char buf '\n';
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "  %c %s\n" marks.(si mod Array.length marks) name))
        series);
    Buffer.contents buf
end
