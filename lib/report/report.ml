let gmean values =
  let positive = List.filter (fun v -> v > 0.0) values in
  match positive with
  | [] -> 0.0
  | _ :: _ ->
    let n = float_of_int (List.length positive) in
    exp (List.fold_left (fun acc v -> acc +. log v) 0.0 positive /. n)

module Table = struct
  type align = Left | Right

  type t = {
    title : string;
    headers : (string * align) list;
    mutable rows : [ `Row of string list | `Sep ] list;  (* reversed *)
  }

  let create ~title headers = { title; headers; rows = [] }

  let add_row t cells =
    if List.length cells <> List.length t.headers then
      invalid_arg "Report.Table.add_row: wrong number of cells";
    t.rows <- `Row cells :: t.rows

  let add_separator t = t.rows <- `Sep :: t.rows

  let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
  let cell_percent ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (100.0 *. v)

  let render t =
    let rows = List.rev t.rows in
    let ncols = List.length t.headers in
    let widths = Array.make ncols 0 in
    List.iteri (fun i (h, _) -> widths.(i) <- String.length h) t.headers;
    List.iter
      (function
        | `Sep -> ()
        | `Row cells ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
      rows;
    let buf = Buffer.create 1024 in
    let pad align width s =
      let fill = String.make (max 0 (width - String.length s)) ' ' in
      match align with Left -> s ^ fill | Right -> fill ^ s
    in
    let total_width =
      Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
    in
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make total_width '=');
    Buffer.add_char buf '\n';
    List.iteri
      (fun i (h, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align widths.(i) h))
      t.headers;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n';
    List.iter
      (function
        | `Sep ->
          Buffer.add_string buf (String.make total_width '-');
          Buffer.add_char buf '\n'
        | `Row cells ->
          List.iteri
            (fun i c ->
              if i > 0 then Buffer.add_string buf "  ";
              let _, align = List.nth t.headers i in
              Buffer.add_string buf (pad align widths.(i) c))
            cells;
          Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec add buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        (* %.17g is lossless for doubles; trim the common integral case. *)
        let s = Printf.sprintf "%.17g" f in
        Buffer.add_string buf s
      else Buffer.add_string buf "null"
    | String s -> add_escaped buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    add buf t;
    Buffer.contents buf
end

module Chart = struct
  type t = {
    title : string;
    x_labels : string list;
    height : int;
    mutable series : (string * float list) list;  (* reversed *)
  }

  let create ~title ~x_labels ~height () = { title; x_labels; height; series = [] }

  let add_series t ~name values =
    if List.length values <> List.length t.x_labels then
      invalid_arg "Report.Chart.add_series: wrong number of points";
    t.series <- (name, values) :: t.series

  let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

  let render t =
    let series = List.rev t.series in
    let all_values =
      List.concat_map (fun (_, vs) -> List.filter (fun v -> not (Float.is_nan v)) vs) series
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n';
    (match all_values with
    | [] -> Buffer.add_string buf "  (no data)\n"
    | _ :: _ ->
      let vmin = List.fold_left min infinity all_values in
      let vmax = List.fold_left max neg_infinity all_values in
      let span = if vmax -. vmin < 1e-9 then 1.0 else vmax -. vmin in
      let nx = List.length t.x_labels in
      let col_width = 7 in
      let row_of v =
        int_of_float
          (Float.round ((v -. vmin) /. span *. float_of_int (t.height - 1)))
      in
      let grid = Array.make_matrix t.height (nx * col_width) ' ' in
      List.iteri
        (fun si (_, vs) ->
          let mark = marks.(si mod Array.length marks) in
          List.iteri
            (fun xi v ->
              if not (Float.is_nan v) then begin
                let r = t.height - 1 - row_of v in
                let c = (xi * col_width) + (col_width / 2) in
                if grid.(r).(c) = ' ' then grid.(r).(c) <- mark
                else grid.(r).(c) <- '?'  (* collision *)
              end)
            vs)
        series;
      for r = 0 to t.height - 1 do
        let frac = float_of_int (t.height - 1 - r) /. float_of_int (t.height - 1) in
        let label = vmin +. (frac *. span) in
        Buffer.add_string buf (Printf.sprintf "%10.3f |" label);
        Buffer.add_string buf (String.init (nx * col_width) (fun c -> grid.(r).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (String.make 12 ' ');
      Buffer.add_string buf (String.make (nx * col_width) '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make 12 ' ');
      List.iter
        (fun l ->
          let l = if String.length l > col_width - 1 then String.sub l 0 (col_width - 1) else l in
          Buffer.add_string buf l;
          Buffer.add_string buf (String.make (col_width - String.length l) ' '))
        t.x_labels;
      Buffer.add_char buf '\n';
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "  %c %s\n" marks.(si mod Array.length marks) name))
        series);
    Buffer.contents buf
end
