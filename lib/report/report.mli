(** Table and chart rendering for the experiment harness: aligned ASCII
    tables (the paper's tables) and simple line charts (its figures), plus
    the geometric-mean helper the paper uses for its summary bars. *)

val gmean : float list -> float
(** Geometric mean; ignores non-positive values (which would otherwise
    poison the product — the paper's means are over positive ratios). *)

module Table : sig
  type align = Left | Right

  type t

  val create : title:string -> (string * align) list -> t
  val add_row : t -> string list -> unit
  val add_separator : t -> unit
  val render : t -> string

  val cell_float : ?decimals:int -> float -> string
  val cell_percent : ?decimals:int -> float -> string
  (** [cell_percent 0.137 = "13.7%"]. *)
end

module Json : sig
  (** A minimal JSON emitter and parser for machine-readable stats — no
      dependencies, enough for [--stats-json] / [benchdiff] style
      round-trips. *)

  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** Non-finite values are emitted as [null]. *)
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact (single-line) rendering with full string escaping. *)

  val of_string : string -> (t, string) result
  (** Parse a complete JSON document.  Integral number literals that fit
      an OCaml [int] parse as [Int], everything else as [Float], so
      [of_string (to_string d)] reproduces [d] for any document whose
      floats are finite. *)

  val member : string -> t -> t option
  (** Field lookup; [None] on a missing field or a non-object. *)

  val to_float_opt : t -> float option
  (** Numeric coercion: [Int] and [Float] only. *)
end

module Stats : sig
  (** Repeated-sample statistics for the benchmark regression gate:
      sample mean and deviation, Student-t confidence intervals and
      Welch's unequal-variance two-sample test. *)

  val mean : float list -> float
  (** 0 on the empty list. *)

  val stddev : float list -> float
  (** Sample (n-1) standard deviation; 0 for fewer than two samples. *)

  val t_crit95 : int -> float
  (** Two-sided 95% Student t critical value for the given degrees of
      freedom (normal approximation beyond df = 30). *)

  val ci95 : float list -> float
  (** Half-width of the 95% confidence interval of the mean; 0 for fewer
      than two samples. *)

  val welch_t : float list -> float list -> (float * int) option
  (** Welch's t statistic (second sample minus first) and its
      Welch–Satterthwaite degrees of freedom; [None] when either side has
      fewer than two samples. *)

  val significant : float list -> float list -> bool
  (** Two-sided Welch test at 95%.  With fewer than two samples on either
      side there is no variance estimate and the test conservatively
      reports [true] (every difference counts). *)
end

module Chart : sig
  (** A small ASCII line chart: one column per x value, series plotted with
      distinct marks, y axis auto-scaled. *)

  type t

  val create :
    title:string -> x_labels:string list -> height:int -> unit -> t

  val add_series : t -> name:string -> float list -> unit
  (** One value per x label ([nan] for missing points). *)

  val render : t -> string
end
