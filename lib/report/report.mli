(** Table and chart rendering for the experiment harness: aligned ASCII
    tables (the paper's tables) and simple line charts (its figures), plus
    the geometric-mean helper the paper uses for its summary bars. *)

val gmean : float list -> float
(** Geometric mean; ignores non-positive values (which would otherwise
    poison the product — the paper's means are over positive ratios). *)

module Table : sig
  type align = Left | Right

  type t

  val create : title:string -> (string * align) list -> t
  val add_row : t -> string list -> unit
  val add_separator : t -> unit
  val render : t -> string

  val cell_float : ?decimals:int -> float -> string
  val cell_percent : ?decimals:int -> float -> string
  (** [cell_percent 0.137 = "13.7%"]. *)
end

module Json : sig
  (** A minimal JSON emitter for machine-readable stats (no parser, no
      dependencies — enough for [--stats-json] style outputs). *)

  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** Non-finite values are emitted as [null]. *)
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact (single-line) rendering with full string escaping. *)
end

module Chart : sig
  (** A small ASCII line chart: one column per x value, series plotted with
      distinct marks, y axis auto-scaled. *)

  type t

  val create :
    title:string -> x_labels:string list -> height:int -> unit -> t

  val add_series : t -> name:string -> float list -> unit
  (** One value per x label ([nan] for missing points). *)

  val render : t -> string
end
